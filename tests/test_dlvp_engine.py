"""End-to-end tests of the DLVP engine (fetch -> probe -> execute)."""

import pytest

from repro.core import DlvpConfig, DlvpEngine
from repro.isa import Instruction, OpClass
from repro.memory import MemoryHierarchy, MemoryImage
from repro.predictors import CapConfig, CapPredictor


def load(pc=0x1000, addr=0x5000, values=(42,), dests=(1,), size=8):
    return Instruction(pc=pc, op=OpClass.LOAD, dests=dests, mem_addr=addr,
                       mem_size=size, values=values)


def make_engine(**config_kwargs):
    image = MemoryImage()
    hierarchy = MemoryHierarchy()
    engine = DlvpEngine(config=DlvpConfig(**config_kwargs), hierarchy=hierarchy,
                        image=image)
    return engine, image, hierarchy


def run_load(engine, inst, cycle, slot=0, image_value=None):
    """One full fetch->probe->execute round for a load."""
    if image_value is not None:
        engine.image.write(inst.mem_addr, inst.mem_size, image_value)
    handle = engine.on_load_fetch(inst, cycle, slot)
    engine.probe(handle, cycle + 2)
    values = engine.predicted_values(handle, inst)
    access = engine.hierarchy.access(inst.pc, inst.mem_addr)
    outcome = engine.on_load_execute(
        handle, inst, access.way, values is not None, values
    )
    return outcome, values


class TestHappyPath:
    def test_trains_then_predicts_correct_value(self):
        engine, image, _ = make_engine()
        image.write(0x5000, 8, 42)
        outcome = None
        for i in range(40):
            outcome, values = run_load(engine, load(), cycle=10 * i)
            if outcome.value_predicted:
                break
        assert outcome is not None and outcome.value_predicted
        assert outcome.value_correct
        assert engine.stats.value_correct >= 1
        assert engine.stats.probe_hits >= 1

    def test_engine_shares_caller_image(self):
        """Regression: an empty MemoryImage is falsy; the engine must
        keep the caller's instance, not silently make its own."""
        image = MemoryImage()
        engine = DlvpEngine(image=image)
        assert engine.image is image

    def test_multi_dest_values_extracted(self):
        engine, image, _ = make_engine()
        image.write(0x5000, 8, 11)
        image.write(0x5008, 8, 22)
        inst = load(dests=(1, 2), values=(11, 22))
        predicted = None
        for i in range(40):
            outcome, values = run_load(engine, inst, cycle=10 * i)
            if values is not None:
                predicted = values
                break
        assert predicted == (11, 22)

    def test_oversized_footprint_not_predicted(self):
        engine, image, _ = make_engine()
        inst = load(dests=tuple(range(1, 9)), values=tuple(range(8)), size=8)
        for i in range(40):
            outcome, values = run_load(engine, inst, cycle=10 * i)
            assert values is None       # 64B footprint > probe capture


class TestInFlightConflicts:
    def test_stale_probe_inserts_into_lscd(self):
        """Correct address + wrong value = an in-flight store raced the
        probe; the load must enter the LSCD."""
        engine, image, _ = make_engine()
        image.write(0x5000, 8, 42)
        # Train until a prediction happens.
        while True:
            outcome, _ = run_load(engine, load(), cycle=0)
            if outcome.value_predicted:
                break
        # Now the architectural value changes but the image (committed
        # state) still has the old value: probe returns stale 42.
        stale = load(values=(99,))
        handle = engine.on_load_fetch(stale, 0, 0)
        engine.probe(handle, 2)
        values = engine.predicted_values(handle, stale)
        access = engine.hierarchy.access(stale.pc, stale.mem_addr)
        outcome = engine.on_load_execute(handle, stale, access.way, True, values)
        assert not outcome.value_correct
        assert outcome.address_correct
        assert engine.stats.inflight_conflicts == 1
        assert stale.pc in engine.lscd

    def test_lscd_blocks_future_instances(self):
        engine, image, _ = make_engine()
        engine.lscd.insert(0x1000)
        handle = engine.on_load_fetch(load(), 0, 0)
        assert handle.lscd_blocked
        assert handle.prediction is None
        access = engine.hierarchy.access(0x1000, 0x5000)
        outcome = engine.on_load_execute(handle, load(), access.way, False, None)
        assert not outcome.address_predicted
        assert engine.stats.lscd_blocked == 1


class TestProbeBehaviour:
    def test_probe_miss_generates_prefetch(self):
        engine, image, hierarchy = make_engine()
        image.write(0x5000, 8, 42)
        # Train the APT (demand accesses keep L1 warm), then evict.
        while True:
            outcome, _ = run_load(engine, load(), cycle=0)
            if engine.predictor.predict_pc if False else True:
                if outcome.value_predicted:
                    break
        hierarchy.l1d.invalidate(0x5000)
        handle = engine.on_load_fetch(load(), 0, 0)
        engine.probe(handle, 2)
        assert not handle.probe_hit
        assert engine.stats.prefetches == 1
        # The prefetch brought the block back.
        assert hierarchy.probe_l1(0x5000)[0]

    def test_prefetch_disabled(self):
        engine, image, hierarchy = make_engine(prefetch_on_miss=False)
        image.write(0x5000, 8, 42)
        while True:
            outcome, _ = run_load(engine, load(), cycle=0)
            if outcome.value_predicted:
                break
        hierarchy.l1d.invalidate(0x5000)
        handle = engine.on_load_fetch(load(), 0, 0)
        engine.probe(handle, 2)
        assert engine.stats.prefetches == 0

    def test_stale_way_prediction_misses(self):
        engine, image, hierarchy = make_engine()
        image.write(0x5000, 8, 42)
        while True:
            outcome, _ = run_load(engine, load(), cycle=0)
            if outcome.value_predicted:
                break
        # Move the block to a different way: evict + refill after
        # touching other blocks in the set.
        hierarchy.l1d.invalidate(0x5000)
        hierarchy.l1d.fill(0x5000)
        handle = engine.on_load_fetch(load(), 0, 0)
        engine.probe(handle, 2)
        # Either the way happens to match (fine) or it is counted.
        assert engine.stats.way_mispredictions in (0, 1)

    def test_paq_age_drop_cancels_prediction(self):
        engine, image, _ = make_engine(paq_drop_cycles=2)
        image.write(0x5000, 8, 42)
        for i in range(40):
            handle = engine.on_load_fetch(load(), 0, 0)
            engine.probe(handle, 100)      # far beyond the drop window
            if handle.dropped:
                assert handle.prediction is None
                return
            access = engine.hierarchy.access(0x1000, 0x5000)
            engine.on_load_execute(handle, load(), access.way, False, None)
        pytest.fail("no prediction ever queued")


class TestCapBackend:
    def test_cap_variant_trains_and_predicts(self):
        image = MemoryImage()
        hierarchy = MemoryHierarchy()
        engine = DlvpEngine(
            hierarchy=hierarchy, image=image,
            address_predictor=CapPredictor(CapConfig(confidence_threshold=3,
                                                     update_delay=0)),
        )
        image.write(0x5000, 8, 42)
        predicted = False
        for i in range(60):
            handle = engine.on_load_fetch(load(), i, 0)
            engine.probe(handle, i + 2)
            values = engine.predicted_values(handle, load())
            access = hierarchy.access(0x1000, 0x5000)
            outcome = engine.on_load_execute(handle, load(), access.way,
                                             values is not None, values)
            predicted = predicted or outcome.value_predicted
        assert predicted


class TestUnpredictedPath:
    def test_third_load_of_group_counts_in_denominator(self):
        engine, _, _ = make_engine()
        engine.on_load_fetch_unpredicted(load())
        assert engine.stats.loads_seen == 1
