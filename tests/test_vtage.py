"""Tests for VTAGE and its ARM-specific opcode filters."""

import pytest

from repro.isa import Instruction, OpClass
from repro.predictors import (
    OpcodeFilterMode,
    VtageConfig,
    VtagePredictor,
    instruction_type,
)


def load(pc=0x1000, dests=(1,), values=(42,), size=8, vector=False):
    return Instruction(pc=pc, op=OpClass.LOAD, dests=dests, mem_addr=0x2000,
                       mem_size=size, values=values, is_vector=vector)


def train_until_predicts(vtage, inst, history=0, rounds=800):
    for i in range(rounds):
        if vtage.train(inst, history) is not None:
            return i
    return None


class TestInstructionTypes:
    def test_scalar_load(self):
        assert instruction_type(load()) == "load"

    def test_ldp(self):
        assert instruction_type(load(dests=(1, 2), values=(1, 2))) == "ldp"

    def test_ldm(self):
        inst = load(dests=(1, 2, 3), values=(1, 2, 3))
        assert instruction_type(inst) == "ldm"

    def test_vld(self):
        inst = load(values=(1 << 80,), size=16, vector=True)
        assert instruction_type(inst) == "vld"

    def test_alu(self):
        alu = Instruction(pc=0, op=OpClass.ALU, dests=(1,), values=(0,))
        assert instruction_type(alu) == "alu"


class TestPrediction:
    def test_stable_value_learned(self):
        vtage = VtagePredictor()
        first = train_until_predicts(vtage, load())
        assert first is not None
        assert vtage.predict(load(), 0) == (42,)

    def test_confidence_requires_many_observations(self):
        """The 3-bit FPC needs on the order of 64-128 observations —
        the paper's Challenge #2."""
        vtage = VtagePredictor()
        first = train_until_predicts(vtage, load())
        assert first > 30

    def test_value_change_resets(self):
        vtage = VtagePredictor()
        train_until_predicts(vtage, load())
        vtage.train(load(values=(99,)), 0)
        vtage.train(load(values=(99,)), 0)
        assert vtage.predict(load(values=(99,)), 0) is None

    def test_multi_dest_all_or_nothing(self):
        vtage = VtagePredictor()
        inst = load(dests=(1, 2), values=(10, 20))
        first = train_until_predicts(vtage, inst)
        # With the static filter LDP is never predicted.
        assert first is None

    def test_ldp_predicted_without_filter(self):
        vtage = VtagePredictor(VtageConfig(filter_mode=OpcodeFilterMode.NONE))
        inst = load(dests=(1, 2), values=(10, 20))
        assert train_until_predicts(vtage, inst) is not None
        assert vtage.predict(inst, 0) == (10, 20)

    def test_vector_value_reassembled(self):
        vtage = VtagePredictor(VtageConfig(filter_mode=OpcodeFilterMode.NONE))
        value = (0xABCD << 64) | 0x1234
        inst = load(values=(value,), size=16, vector=True)
        assert train_until_predicts(vtage, inst) is not None
        assert vtage.predict(inst, 0) == (value,)

    def test_history_contexts_are_distinct(self):
        vtage = VtagePredictor()
        train_until_predicts(vtage, load(), history=0b1111)
        # Different (long enough) branch history looks up other entries.
        assert vtage.predict(load(), 0b1010101010101) is None or True
        assert vtage.predict(load(), 0b1111) == (42,)


class TestFilters:
    def test_static_filter_blocks_types(self):
        vtage = VtagePredictor()   # static filter default
        assert not vtage.eligible(load(dests=(1, 2), values=(1, 2)))
        assert not vtage.eligible(load(values=(1,), size=16, vector=True))
        assert vtage.eligible(load())

    def test_loads_only_blocks_alu(self):
        vtage = VtagePredictor()
        alu = Instruction(pc=0, op=OpClass.ALU, dests=(1,), values=(3,))
        assert not vtage.eligible(alu)

    def test_all_instructions_mode(self):
        vtage = VtagePredictor(VtageConfig(loads_only=False))
        alu = Instruction(pc=0, op=OpClass.ALU, dests=(1,), values=(3,))
        assert vtage.eligible(alu)

    def test_stores_never_eligible(self):
        vtage = VtagePredictor(VtageConfig(loads_only=False))
        store = Instruction(pc=0, op=OpClass.STORE, mem_addr=0x10, values=(1,))
        assert not vtage.eligible(store)

    def test_dynamic_filter_learns_bad_types(self):
        # Fast-saturating FPC so the test is cheap: the LDP's second
        # value stays stable long enough to predict, then flips — a
        # stream of confident-but-wrong predictions drags the type's
        # accuracy below the 95% threshold and the filter blocks it.
        vtage = VtagePredictor(
            VtageConfig(filter_mode=OpcodeFilterMode.DYNAMIC,
                        dynamic_filter_warmup=16,
                        fpc_vector=(1.0, 0.5), seed=4)
        )
        blocked = False
        for cycle in range(200):
            stable = (10, cycle)
            for _ in range(12):
                vtage.train(load(dests=(1, 2), values=stable), 0)
            if not vtage.eligible(load(dests=(1, 2), values=(0, 0))):
                blocked = True
                break
        assert blocked
        # Scalar loads remain eligible.
        assert vtage.eligible(load())


class TestTwoPhase:
    def test_begin_finish_matches_train(self):
        a = VtagePredictor(VtageConfig(seed=9))
        b = VtagePredictor(VtageConfig(seed=9))
        inst = load()
        for _ in range(400):
            pred_a = a.train(inst, 0)
            handle = b.begin(inst, 0)
            pred_b = handle.prediction if handle else None
            b.finish(handle, inst)
            assert pred_a == pred_b

    def test_begin_counts_all_loads(self):
        vtage = VtagePredictor()
        vtage.begin(load(dests=(1, 2), values=(1, 2)), 0)   # filtered type
        assert vtage.stats.loads_seen == 1

    def test_finish_reports_correctness(self):
        vtage = VtagePredictor()
        inst = load()
        for _ in range(600):
            handle = vtage.begin(inst, 0)
            correct = vtage.finish(handle, inst)
            if handle.prediction is not None:
                assert correct
                return
        pytest.fail("never predicted")


class TestAccounting:
    def test_storage_bits_table4(self):
        bits = VtagePredictor().storage_bits()
        assert bits == 3 * 256 * (16 + 64 + 3)     # 62.2k bits

    def test_coverage_denominator_is_all_loads(self):
        vtage = VtagePredictor()
        for _ in range(10):
            vtage.train(load(dests=(1, 2), values=(1, 2)), 0)   # filtered
        assert vtage.stats.loads_seen == 10
        assert vtage.stats.coverage == 0.0

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            VtageConfig(table_entries=100)
        with pytest.raises(ValueError):
            VtageConfig(history_lengths=(5, 13))

    def test_type_accuracy_report(self):
        vtage = VtagePredictor()
        for _ in range(300):
            vtage.train(load(), 0)
        report = vtage.type_accuracy_report()
        assert report.get("load", 1.0) >= 0.99
