"""Tests for LVP, the stride value predictor and the tournament chooser."""

from repro.isa import Instruction, OpClass
from repro.predictors import (
    LastValuePredictor,
    StrideValuePredictor,
    TournamentChooser,
)


def load(pc=0x1000, dests=(1,), values=(42,)):
    return Instruction(pc=pc, op=OpClass.LOAD, dests=dests, mem_addr=0x2000,
                       mem_size=8, values=values)


class TestLvp:
    def test_learns_stable_value(self):
        lvp = LastValuePredictor()
        pred = None
        for _ in range(600):
            pred = lvp.train(load())
            if pred is not None:
                break
        assert pred == (42,)

    def test_changing_value_never_predicts(self):
        lvp = LastValuePredictor()
        for i in range(300):
            assert lvp.train(load(values=(i,))) is None

    def test_conflicting_store_scenario(self):
        """The Figure 1 motivation: a store changing the value forces
        LVP to mispredict once and then retrain from scratch."""
        lvp = LastValuePredictor()
        while lvp.train(load()) is None:
            pass
        pred = lvp.train(load(values=(77,)))       # value changed by a store
        assert pred == (42,)                        # stale prediction
        assert lvp.stats.mispredictions >= 1
        assert lvp.train(load(values=(77,))) is None   # retraining

    def test_non_load_ignored(self):
        lvp = LastValuePredictor()
        alu = Instruction(pc=0, op=OpClass.ALU, dests=(1,), values=(5,))
        assert lvp.train(alu) is None
        assert lvp.stats.loads_seen == 0

    def test_multi_dest_requires_all_slots(self):
        lvp = LastValuePredictor()
        inst = load(dests=(1, 2), values=(10, 20))
        pred = None
        for _ in range(800):
            pred = lvp.train(inst)
            if pred is not None:
                break
        assert pred == (10, 20)

    def test_storage_positive(self):
        assert LastValuePredictor().storage_bits() > 0


class TestStridePredictor:
    def test_learns_strided_values(self):
        sp = StrideValuePredictor()
        pred = None
        for i in range(800):
            pred = sp.train(load(values=(100 + 3 * i,)))
            if pred is not None:
                assert pred == (100 + 3 * i,)
                return
        assert False, "never predicted a perfect stride"

    def test_constant_is_zero_stride(self):
        sp = StrideValuePredictor()
        for i in range(600):
            pred = sp.train(load())
            if pred is not None:
                assert pred == (42,)
                return
        assert False

    def test_random_values_never_confident(self):
        import random
        rng = random.Random(3)
        sp = StrideValuePredictor()
        preds = [sp.train(load(values=(rng.getrandbits(32),))) for _ in range(400)]
        assert all(p is None for p in preds[:50])
        assert sp.stats.accuracy >= 0.0

    def test_multi_dest_skipped(self):
        sp = StrideValuePredictor()
        assert sp.train(load(dests=(1, 2), values=(1, 2))) is None
        assert sp.stats.loads_seen == 0


class TestTournamentChooser:
    def test_initial_preference(self):
        assert TournamentChooser(initial=2).choose_a(0x1000)
        assert not TournamentChooser(initial=1).choose_a(0x1000)

    def test_update_moves_toward_winner(self):
        ch = TournamentChooser(initial=2)
        for _ in range(4):
            ch.update(0x1000, a_correct=False, b_correct=True)
        assert not ch.choose_a(0x1000)

    def test_abstention_is_neutral(self):
        ch = TournamentChooser(initial=2)
        ch.update(0x1000, a_correct=None, b_correct=None)
        assert ch.choose_a(0x1000)

    def test_correct_vs_abstain_is_neutral(self):
        # A lone prediction wins by default, so abstain-vs-correct
        # carries no routing signal.
        ch = TournamentChooser(initial=0)
        for _ in range(4):
            ch.update(0x1000, a_correct=True, b_correct=None)
        assert not ch.choose_a(0x1000)

    def test_abstain_beats_wrong(self):
        ch = TournamentChooser(initial=3)
        for _ in range(4):
            ch.update(0x1000, a_correct=False, b_correct=None)
        assert not ch.choose_a(0x1000)

    def test_unbiased_default_initialization(self):
        ch = TournamentChooser(entries=8)
        prefs = {ch.choose_a(pc) for pc in range(0, 64, 4)}
        assert prefs == {True, False}

    def test_per_pc_counters(self):
        ch = TournamentChooser(initial=2)
        for _ in range(4):
            ch.update(0x1000, a_correct=False, b_correct=True)
        assert ch.choose_a(0x1004)        # untouched PC keeps default
        assert not ch.choose_a(0x1000)

    def test_choice_stats(self):
        ch = TournamentChooser()
        ch.record_choice(True)
        ch.record_choice(False)
        ch.record_choice(True)
        assert ch.stats.total == 3
        assert ch.stats.a_share == 2 / 3

    def test_storage(self):
        assert TournamentChooser(entries=1024).storage_bits() == 2048
