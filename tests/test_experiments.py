"""Tests for the experiment runners (small suite subsets for speed)."""

import pytest

from repro.experiments import SuiteRunner, arithmetic_mean, geometric_mean
from repro.experiments import (
    fig1_conflicts,
    fig2_repeatability,
    fig4_address_prediction,
    fig5_prefetch,
    fig6_value_prediction,
    fig7_vtage_flavors,
    fig8_tournament,
    fig9_selected,
    fig10_recovery,
    tables,
)

SMALL = ["perlbmk", "gzip", "nat", "vortex"]


@pytest.fixture(scope="module")
def runner():
    return SuiteRunner(n_instructions=3000, names=SMALL)


class TestRunnerMachinery:
    def test_traces_cached(self, runner):
        assert runner.traces is runner.traces

    def test_baselines_cached(self, runner):
        assert runner.baselines() is runner.baselines()

    def test_speedups_keys(self, runner):
        from repro.pipeline import DlvpScheme
        runs = runner.run_scheme(DlvpScheme)
        sp = runner.speedups(runs)
        assert set(sp) == set(SMALL)

    def test_means(self):
        assert arithmetic_mean([1.0, 3.0]) == 2.0
        assert geometric_mean([0.0, 0.0]) == pytest.approx(0.0)
        assert geometric_mean([]) == 0.0
        assert arithmetic_mean([]) == 0.0

    def test_geometric_mean_skips_nonpositive_factors(self):
        # a speedup of -100% (or worse) has a factor <= 0, for which the
        # geometric mean is undefined; it must warn and skip, not raise
        with pytest.warns(RuntimeWarning, match="non-positive"):
            assert geometric_mean([-1.0]) == 0.0
        with pytest.warns(RuntimeWarning, match="non-positive"):
            assert geometric_mean([-1.5]) == 0.0
        with pytest.warns(RuntimeWarning, match="non-positive"):
            assert geometric_mean([-2.0, 0.1]) == pytest.approx(0.1)

    def test_geometric_mean_no_warning_for_valid_factors(self):
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert geometric_mean([0.1, -0.5]) == pytest.approx(
                ((1.1 * 0.5) ** 0.5) - 1.0
            )

    def test_scheme_id_matches_legacy_factory(self, runner):
        """The runtime job path and the in-process factory path agree."""
        from repro.pipeline import DlvpScheme
        by_id = runner.run_scheme("dlvp")
        by_factory = runner.run_scheme(DlvpScheme)
        assert by_id == by_factory


class TestFig1(object):
    def test_runs_and_renders(self, runner):
        res = fig1_conflicts.run(runner)
        assert set(res.profiles) == set(SMALL)
        assert 0.0 <= res.average_conflict_fraction <= 1.0
        assert 0.0 <= res.average_committed_share <= 1.0
        assert "Figure 1" in res.render()

    def test_perlbmk_conflicts_committed(self, runner):
        res = fig1_conflicts.run(runner)
        p = res.profiles["perlbmk"]
        assert p.fraction_committed > 0.1


class TestFig2:
    def test_series_monotone(self, runner):
        res = fig2_repeatability.run(runner)
        series = list(res.series("address").values())
        assert all(a >= b for a, b in zip(series, series[1:]))
        assert "Figure 2" in res.render()

    def test_fractions_bounded(self, runner):
        res = fig2_repeatability.run(runner)
        assert 0.0 <= res.address_ge8 <= 1.0
        assert 0.0 <= res.value_ge64 <= 1.0


class TestFig4:
    def test_pap_accuracy_high(self, runner):
        res = fig4_address_prediction.run(runner, cap_confidences=(8,))
        assert res.pap.accuracy > 0.97
        assert 0.0 < res.pap.coverage < 1.0
        assert "Figure 4" in res.render()

    def test_cap_coverage_drops_with_confidence(self):
        r = SuiteRunner(n_instructions=4000, names=["gzip", "vortex", "nat"])
        res = fig4_address_prediction.run(r, cap_confidences=(3, 64))
        assert res.cap_by_confidence[64].coverage <= \
            res.cap_by_confidence[3].coverage + 0.01


class TestFig5:
    def test_runs(self, runner):
        res = fig5_prefetch.run(runner)
        assert set(res.prefetch_fraction) == set(SMALL)
        assert all(0.0 <= f <= 1.0 for f in res.prefetch_fraction.values())
        assert "Figure 5" in res.render()


class TestFig6:
    def test_runs_and_aggregates(self, runner):
        res = fig6_value_prediction.run(runner)
        for scheme in ("cap", "vtage", "dlvp"):
            assert 0.0 <= res.average_coverage(scheme) <= 1.0
            assert 0.0 <= res.average_accuracy(scheme) <= 1.0
            assert res.average_energy(scheme) > 0.5
        name, best = res.max_speedup("dlvp")
        assert name in SMALL
        assert "Figure 6" in res.render()

    def test_dlvp_beats_vtage_here(self, runner):
        res = fig6_value_prediction.run(runner)
        assert res.average_speedup("dlvp") > res.average_speedup("vtage")


class TestFig7:
    def test_all_six_configs(self, runner):
        res = fig7_vtage_flavors.run(runner)
        assert len(res.results) == 6
        assert "Figure 7" in res.render()


class TestFig8:
    def test_breakdown_fractions(self, runner):
        res = fig8_tournament.run(runner)
        d, v = res.prediction_breakdown()
        assert 0.0 <= d <= 1.0 and 0.0 <= v <= 1.0
        assert "Figure 8" in res.render()


class TestFig9:
    def test_selected_set(self):
        runner = SuiteRunner(n_instructions=2000)
        res = fig9_selected.run(runner)
        assert set(res.dlvp) == set(fig9_selected.SELECTED)
        assert "Figure 9" in res.render()


class TestFig10:
    def test_replay_never_worse(self, runner):
        res = fig10_recovery.run(runner)
        for scheme in ("cap", "vtage", "dlvp"):
            assert res.delta(scheme) >= -0.01
        assert "Figure 10" in res.render()


class TestTables:
    def test_table1_budgets(self):
        res = tables.table1()
        assert res.armv7_bits == 50
        assert res.armv8_bits == 67
        assert "Table 1" in res.render()

    def test_table2(self):
        assert "Table 2" in tables.table2().render()

    def test_table3_counts(self):
        res = tables.table3()
        assert res.total == 78
        assert "Table 3" in res.render()

    def test_table4_budgets(self):
        res = tables.table4()
        assert res.pap_bits == 1024 * 67
        assert res.pap_bits_v7 == 1024 * 50
        assert 60_000 < res.vtage_bits < 65_000
        assert "Table 4" in res.render()
