"""Tests for the forward probabilistic counters."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.predictors import ForwardProbabilisticCounter, SaturatingCounter
from repro.predictors.confidence import (
    PAP_FPC_VECTOR,
    VTAGE_FPC_VECTOR,
    fpc_advance,
)


class _FixedRng:
    """Stub RNG returning a fixed value from ``random()``."""

    def __init__(self, value: float) -> None:
        self.value = value

    def random(self) -> float:
        return self.value


class TestFpc:
    def test_starts_unsaturated(self):
        assert not ForwardProbabilisticCounter().saturated

    def test_certain_first_transition(self):
        fpc = ForwardProbabilisticCounter((1.0, 0.5))
        assert fpc.increment()
        assert fpc.value == 1

    def test_saturates_eventually(self):
        fpc = ForwardProbabilisticCounter(PAP_FPC_VECTOR, rng=random.Random(1))
        steps = 0
        while not fpc.saturated:
            fpc.increment()
            steps += 1
            assert steps < 1000
        assert fpc.value == fpc.max_value

    def test_no_increment_past_saturation(self):
        fpc = ForwardProbabilisticCounter((1.0,))
        fpc.increment()
        assert not fpc.increment()
        assert fpc.value == 1

    def test_reset(self):
        fpc = ForwardProbabilisticCounter((1.0,))
        fpc.increment()
        fpc.reset()
        assert fpc.value == 0

    def test_pap_expected_observations_near_8(self):
        # The paper: an address must be observed only ~8 times (vs 64-128
        # for VTAGE) — {1, 1/2, 1/4} gives E = 7.
        fpc = ForwardProbabilisticCounter(PAP_FPC_VECTOR)
        assert fpc.expected_observations() == pytest.approx(7.0)

    def test_vtage_expected_observations_near_127(self):
        fpc = ForwardProbabilisticCounter(VTAGE_FPC_VECTOR)
        assert fpc.expected_observations() == pytest.approx(127.0)

    def test_empirical_saturation_cost(self):
        rng = random.Random(7)
        total = 0
        for _ in range(300):
            fpc = ForwardProbabilisticCounter(PAP_FPC_VECTOR, rng=rng)
            while not fpc.saturated:
                fpc.increment()
                total += 1
        assert 5.0 < total / 300 < 10.0

    def test_storage_bits(self):
        assert ForwardProbabilisticCounter(PAP_FPC_VECTOR).storage_bits == 2
        assert ForwardProbabilisticCounter(VTAGE_FPC_VECTOR).storage_bits == 3

    def test_default_rng_counters_not_in_lockstep(self):
        # Regression: each default-constructed FPC used to seed its own
        # private Random(0xF9C), so every counter in a predictor bank
        # drew the *same* stream and advanced in lockstep.  Defaults
        # must share one RNG so two counters see different draws.
        a = ForwardProbabilisticCounter(VTAGE_FPC_VECTOR)
        b = ForwardProbabilisticCounter(VTAGE_FPC_VECTOR)
        assert a._rng is b._rng
        # Interleaved increments: with a shared stream the two
        # trajectories diverge; in lockstep they'd be equal after every
        # pair of steps.  512 interleaved steps on the 1/64-tail vector
        # make coincidental equality astronomically unlikely.
        trajectories_identical = True
        for _ in range(512):
            a.increment()
            b.increment()
            if a.value != b.value:
                trajectories_identical = False
        assert not trajectories_identical

    def test_increment_uses_strict_less_than(self):
        # Regression: increment() compared random() <= p, inconsistent
        # with the inlined copies in the predictors, and wrong for
        # random() in [0, 1): a probability-p transition must advance
        # exactly when the draw lands in [0, p).
        fpc = ForwardProbabilisticCounter((1.0, 0.5, 0.25), rng=_FixedRng(0.5))
        fpc.increment()                 # level 0: p=1.0, always advances
        assert fpc.value == 1
        assert not fpc.increment()      # draw 0.5 vs p 0.5: must NOT advance
        assert fpc.value == 1
        fpc._rng = _FixedRng(0.49999)
        assert fpc.increment()          # draw just under p: advances
        assert fpc.value == 2

    def test_fpc_advance_boundary(self):
        vector = (1.0, 0.5)
        assert fpc_advance(_FixedRng(0.0), vector, 1)
        assert not fpc_advance(_FixedRng(0.5), vector, 1)
        assert fpc_advance(_FixedRng(0.0), vector, 0)

    def test_invalid_vectors(self):
        with pytest.raises(ValueError):
            ForwardProbabilisticCounter(())
        with pytest.raises(ValueError):
            ForwardProbabilisticCounter((1.0, 0.0))
        with pytest.raises(ValueError):
            ForwardProbabilisticCounter((1.5,))


class TestSaturatingCounter:
    def test_increment_to_max(self):
        c = SaturatingCounter(2)
        c.increment()
        c.increment()
        c.increment()
        assert c.value == 2
        assert c.saturated

    def test_decrement_to_zero(self):
        c = SaturatingCounter(2, value=1)
        c.decrement()
        c.decrement()
        assert c.value == 0

    def test_reset(self):
        c = SaturatingCounter(3, value=3)
        c.reset()
        assert c.value == 0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SaturatingCounter(0)
        with pytest.raises(ValueError):
            SaturatingCounter(2, value=3)

    @given(st.lists(st.booleans(), max_size=50))
    def test_value_always_in_range(self, moves):
        c = SaturatingCounter(4)
        for up in moves:
            c.increment() if up else c.decrement()
            assert 0 <= c.value <= 4
