"""Tests for the forward probabilistic counters."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.predictors import ForwardProbabilisticCounter, SaturatingCounter
from repro.predictors.confidence import PAP_FPC_VECTOR, VTAGE_FPC_VECTOR


class TestFpc:
    def test_starts_unsaturated(self):
        assert not ForwardProbabilisticCounter().saturated

    def test_certain_first_transition(self):
        fpc = ForwardProbabilisticCounter((1.0, 0.5))
        assert fpc.increment()
        assert fpc.value == 1

    def test_saturates_eventually(self):
        fpc = ForwardProbabilisticCounter(PAP_FPC_VECTOR, rng=random.Random(1))
        steps = 0
        while not fpc.saturated:
            fpc.increment()
            steps += 1
            assert steps < 1000
        assert fpc.value == fpc.max_value

    def test_no_increment_past_saturation(self):
        fpc = ForwardProbabilisticCounter((1.0,))
        fpc.increment()
        assert not fpc.increment()
        assert fpc.value == 1

    def test_reset(self):
        fpc = ForwardProbabilisticCounter((1.0,))
        fpc.increment()
        fpc.reset()
        assert fpc.value == 0

    def test_pap_expected_observations_near_8(self):
        # The paper: an address must be observed only ~8 times (vs 64-128
        # for VTAGE) — {1, 1/2, 1/4} gives E = 7.
        fpc = ForwardProbabilisticCounter(PAP_FPC_VECTOR)
        assert fpc.expected_observations() == pytest.approx(7.0)

    def test_vtage_expected_observations_near_127(self):
        fpc = ForwardProbabilisticCounter(VTAGE_FPC_VECTOR)
        assert fpc.expected_observations() == pytest.approx(127.0)

    def test_empirical_saturation_cost(self):
        rng = random.Random(7)
        total = 0
        for _ in range(300):
            fpc = ForwardProbabilisticCounter(PAP_FPC_VECTOR, rng=rng)
            while not fpc.saturated:
                fpc.increment()
                total += 1
        assert 5.0 < total / 300 < 10.0

    def test_storage_bits(self):
        assert ForwardProbabilisticCounter(PAP_FPC_VECTOR).storage_bits == 2
        assert ForwardProbabilisticCounter(VTAGE_FPC_VECTOR).storage_bits == 3

    def test_invalid_vectors(self):
        with pytest.raises(ValueError):
            ForwardProbabilisticCounter(())
        with pytest.raises(ValueError):
            ForwardProbabilisticCounter((1.0, 0.0))
        with pytest.raises(ValueError):
            ForwardProbabilisticCounter((1.5,))


class TestSaturatingCounter:
    def test_increment_to_max(self):
        c = SaturatingCounter(2)
        c.increment()
        c.increment()
        c.increment()
        assert c.value == 2
        assert c.saturated

    def test_decrement_to_zero(self):
        c = SaturatingCounter(2, value=1)
        c.decrement()
        c.decrement()
        assert c.value == 0

    def test_reset(self):
        c = SaturatingCounter(3, value=3)
        c.reset()
        assert c.value == 0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SaturatingCounter(0)
        with pytest.raises(ValueError):
            SaturatingCounter(2, value=3)

    @given(st.lists(st.booleans(), max_size=50))
    def test_value_always_in_range(self, moves):
        c = SaturatingCounter(4)
        for up in moves:
            c.increment() if up else c.decrement()
            assert 0 <= c.value <= 4
