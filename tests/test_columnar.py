"""The columnar trace engine: representation, streaming, serialization.

Four concerns share this file because they share one invariant — the
struct-of-arrays world must be *losslessly interchangeable* with the
object world:

* ``Trace ↔ ColumnarTrace ↔ v2 bytes`` round-trips bit for bit
  (property-based, covering ``taken=None``, multi-destination loads,
  128-bit vector values, empty ``srcs``/``values``);
* streamed workload generation emits the same instruction stream as
  the one-shot builder, in bounded memory;
* serialization streams on both ends (the regression tests here fail
  against the old buffer-everything save/load);
* the bench gate's three voices (``bench.py`` default, the CI
  invocation, the committed report) say the same thing.

The *simulated-outcome* equivalence of the two engines lives in
``test_golden_simresults.py``, which runs every golden cell through
both.
"""

from __future__ import annotations

import json
import re
import tracemalloc
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro import bench
from repro.isa import Instruction, OpClass
from repro.trace import (
    ColumnarTrace,
    Trace,
    iter_trace_chunks,
    load_trace,
    load_trace_columnar,
    save_trace,
    sniff_trace_format,
)
from repro.workloads import build_workload, build_workload_columnar

REPO_ROOT = Path(__file__).parent.parent

# ---------------------------------------------------------------------------
# property-based round-trips
# ---------------------------------------------------------------------------

_U64 = st.integers(min_value=0, max_value=2**64 - 1)
_U128 = st.integers(min_value=0, max_value=2**128 - 1)
_REG = st.integers(min_value=0, max_value=2**32 - 1)
_PC = st.integers(min_value=0, max_value=2**62 - 1).map(lambda v: v * 4)


@st.composite
def instructions(draw) -> Instruction:
    op = draw(st.sampled_from(list(OpClass)))
    kwargs = {"pc": draw(_PC), "op": op}
    if op == OpClass.LOAD:
        # loads: one value per destination; vector loads carry 128-bit
        # values (two u64 halves in the columnar encoding)
        ndests = draw(st.integers(min_value=1, max_value=4))
        is_vector = draw(st.booleans())
        values = st.lists(_U128 if is_vector else _U64,
                          min_size=ndests, max_size=ndests)
        kwargs.update(
            dests=tuple(draw(st.lists(_REG, min_size=ndests, max_size=ndests))),
            values=tuple(draw(values)),
            mem_addr=draw(_U64),
            mem_size=16 if is_vector else draw(st.sampled_from([1, 2, 4, 8])),
            is_vector=is_vector,
            srcs=tuple(draw(st.lists(_REG, max_size=3))),
        )
    elif op == OpClass.STORE:
        kwargs.update(
            mem_addr=draw(_U64),
            mem_size=draw(st.sampled_from([1, 2, 4, 8])),
            values=(draw(_U64),),
            srcs=tuple(draw(st.lists(_REG, max_size=3))),
        )
    elif op == OpClass.BRANCH:
        kwargs.update(
            taken=draw(st.none() | st.booleans()),
            target=draw(st.none() | _PC),
        )
    elif op in (OpClass.JUMP, OpClass.CALL, OpClass.RETURN, OpClass.INDIRECT):
        kwargs.update(target=draw(st.none() | _PC))
    else:
        # ALU-ish ops: possibly empty srcs/dests/values — the ragged
        # prefix-index encoding must represent zero-length rows
        kwargs.update(
            srcs=tuple(draw(st.lists(_REG, max_size=3))),
            dests=tuple(draw(st.lists(_REG, max_size=2))),
            values=tuple(draw(st.lists(_U64, max_size=2))),
        )
    return Instruction(**kwargs)


traces = st.lists(instructions(), max_size=40).map(
    lambda insts: Trace("prop", insts)
)


@settings(max_examples=60, deadline=None)
@given(trace=traces)
def test_columnar_roundtrip_lossless(trace):
    columnar = ColumnarTrace.from_trace(trace)
    assert len(columnar) == len(trace)
    assert list(columnar) == list(trace.instructions)
    back = columnar.to_trace()
    assert list(back.instructions) == list(trace.instructions)


@settings(max_examples=40, deadline=None)
@given(trace=traces)
def test_v2_serialization_roundtrip(tmp_path_factory, trace):
    path = tmp_path_factory.mktemp("v2") / "t.trace"
    save_trace(trace, path, format="v2", chunk_size=7)
    assert sniff_trace_format(path) == 2
    assert list(load_trace(path).instructions) == list(trace.instructions)
    assert load_trace_columnar(path) == ColumnarTrace.from_trace(trace)


@settings(max_examples=40, deadline=None)
@given(trace=traces)
def test_v1_serialization_roundtrip(tmp_path_factory, trace):
    path = tmp_path_factory.mktemp("v1") / "t.trace"
    save_trace(trace, path, format="v1")
    assert sniff_trace_format(path) == 1
    assert list(load_trace(path).instructions) == list(trace.instructions)
    assert load_trace_columnar(path) == ColumnarTrace.from_trace(trace)


@settings(max_examples=40, deadline=None)
@given(trace=traces, data=st.data())
def test_extend_chunk_reassembly_roundtrip(trace, data):
    """Splitting at random points and re-extending is the identity.

    Covers empty chunks (duplicate cut points), the empty-self extend
    (the first chunk lands in a fresh trace) and ragged-index rebasing
    across arbitrary boundaries.
    """
    columnar = ColumnarTrace.from_trace(trace)
    n = len(columnar)
    cuts = sorted(data.draw(st.lists(
        st.integers(min_value=0, max_value=n), max_size=6)))
    bounds = [0] + cuts + [n]
    out = ColumnarTrace(trace.name)
    for lo, hi in zip(bounds, bounds[1:]):
        out.extend(ColumnarTrace(
            trace.name, (columnar.instruction(i) for i in range(lo, hi))
        ))
    assert out == columnar


def test_columnar_extend_rebases_ragged_indexes():
    a = ColumnarTrace.from_trace(Trace("a", [
        Instruction(pc=0, op=OpClass.ALU, srcs=(1, 2), dests=(3,), values=(9,)),
    ]))
    b = ColumnarTrace.from_trace(Trace("b", [
        Instruction(pc=4, op=OpClass.ALU, srcs=(4,), dests=(5,), values=(8,)),
    ]))
    a.extend(b)
    assert len(a) == 2
    assert a.instruction(1).srcs == (4,)
    assert a.instruction(1).values == (8,)


# ---------------------------------------------------------------------------
# streaming generation
# ---------------------------------------------------------------------------

STREAM_KERNELS = ("gzip", "mcf", "nat", "aifirf")


@pytest.mark.parametrize("workload", STREAM_KERNELS)
def test_stream_equals_build(workload):
    """Chunked emission must replay the one-shot builder bit for bit."""
    n = 6_000
    reference = build_workload(workload, n)
    streamed = []
    for chunk in build_workload(workload, n, stream=True):
        assert isinstance(chunk, ColumnarTrace)
        streamed.extend(chunk)
    assert streamed == list(reference.instructions)


def test_stream_chunk_sizes():
    chunks = list(build_workload("gzip", 6_000, stream=True, chunk_size=2_048))
    assert [len(c) for c in chunks[:-1]] == [2_048] * (len(chunks) - 1)
    assert 0 < len(chunks[-1]) <= 2_048
    assert sum(len(c) for c in chunks) == len(build_workload("gzip", 6_000))


def test_build_workload_columnar_matches():
    assert build_workload_columnar("gzip", 4_000) == ColumnarTrace.from_trace(
        build_workload("gzip", 4_000)
    )


def test_stream_abandonment_does_not_hang():
    """Dropping the generator mid-stream must release the producer."""
    gen = build_workload("gzip", 200_000, stream=True)
    next(gen)
    gen.close()      # must not deadlock on the bounded queue


def test_streaming_peak_memory_is_chunk_bounded():
    """O(chunk) generation: streaming 200k instructions must allocate
    far less than materializing them (an object trace of that size is
    well over 100 MB)."""
    tracemalloc.start()
    total = 0
    for chunk in build_workload("gzip", 200_000, stream=True):
        total += len(chunk)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert total >= 199_000
    assert peak < 24 * 1024 * 1024, f"streaming peak {peak} bytes"


# ---------------------------------------------------------------------------
# serialization streams on both ends (regression: the old save built
# the whole file in a StringIO; the old load read_text().splitlines())
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def big_trace():
    return build_workload("gzip", 50_000)


def test_v1_save_streams(tmp_path, big_trace):
    path = tmp_path / "big.trace"
    tracemalloc.start()
    save_trace(big_trace, path)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    file_size = path.stat().st_size
    assert file_size > 1_000_000
    # pre-fix: the whole serialized text (>= file_size) sat in memory
    assert peak < file_size / 2, f"save peak {peak} vs file {file_size}"


def test_chunked_read_streams(tmp_path, big_trace):
    path = tmp_path / "big.trace"
    save_trace(big_trace, path)
    file_size = path.stat().st_size
    tracemalloc.start()
    n = sum(len(chunk) for chunk in iter_trace_chunks(path, chunk_size=4_096))
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert n == len(big_trace)
    # pre-fix: every line of the file was resident at once
    assert peak < file_size / 2, f"read peak {peak} vs file {file_size}"


def test_v2_chunked_roundtrip_of_generated_trace(tmp_path, big_trace):
    v2 = tmp_path / "big.v2.trace"
    save_trace(big_trace, v2, format="v2", chunk_size=8_192)
    assert load_trace_columnar(v2) == ColumnarTrace.from_trace(big_trace)


def test_save_trace_accepts_chunk_iterator(tmp_path):
    path = tmp_path / "streamed.trace"
    save_trace(build_workload("gzip", 12_000, stream=True), path, format="v2")
    assert load_trace_columnar(path) == build_workload_columnar("gzip", 12_000)


# ---------------------------------------------------------------------------
# column-edge validation: a tampered v2 file must be rejected at the
# deserialization boundary (from_columns), not crash the simulator later
# ---------------------------------------------------------------------------


def _tamper_srcs_final(t):
    t.srcs_index[len(t.srcs_index) - 1] = t.srcs_index[-1] + 1


def _tamper_dests_final(t):
    t.dests_index[len(t.dests_index) - 1] = t.dests_index[-1] + 3


def _tamper_values_final(t):
    t.values_index[len(t.values_index) - 1] = t.values_index[-1] + 1


def _tamper_hi_lo_length(t):
    t.values_hi.pop()


def _tamper_monotonicity(t):
    t.srcs_index[1] = t.srcs_index[-1] + 7


@pytest.mark.parametrize("mutate", [
    _tamper_srcs_final,
    _tamper_dests_final,
    _tamper_values_final,
    _tamper_hi_lo_length,
    _tamper_monotonicity,
], ids=["srcs-final", "dests-final", "values-final",
        "hi-lo-length", "non-monotonic"])
def test_tampered_v2_file_rejected(tmp_path, mutate):
    """iter_trace_chunks must reject columns whose prefix indexes do
    not describe the flat columns (pre-fix: accepted, then the engine
    read out of bounds or silently mis-sliced operands)."""
    trace = build_workload_columnar("gzip", 400)
    mutate(trace)
    path = tmp_path / "tampered.trace"
    # The chunk-iterator path writes columns verbatim; a full-trace
    # save would re-chunk through instruction views and normalize.
    save_trace([trace], path, format="v2")
    with pytest.raises(ValueError):
        list(iter_trace_chunks(path))


def test_from_columns_validates_flat_lengths():
    from array import array

    from repro.trace.columnar import COLUMNS

    good = build_workload_columnar("gzip", 100)
    columns = {attr: getattr(good, attr) for attr, _ in COLUMNS}
    assert len(ColumnarTrace.from_columns("ok", dict(columns))) == len(good)
    truncated = dict(columns)
    truncated["srcs"] = array("I", columns["srcs"][:-1])
    with pytest.raises(ValueError, match="srcs_index"):
        ColumnarTrace.from_columns("bad", truncated)


# ---------------------------------------------------------------------------
# summary counts atomics (regression: ATOMIC was dropped from the
# memory-op accounting)
# ---------------------------------------------------------------------------


def test_summary_counts_atomics():
    trace = Trace("atomics", [
        Instruction(pc=0, op=OpClass.LOAD, dests=(1,), values=(7,), mem_addr=64),
        Instruction(pc=4, op=OpClass.ATOMIC, mem_addr=128, mem_size=8),
        Instruction(pc=8, op=OpClass.ATOMIC, mem_addr=128, mem_size=8),
        Instruction(pc=12, op=OpClass.STORE, values=(1,), mem_addr=64),
    ])
    summary = trace.summary()
    assert summary.atomics == 2
    assert summary.loads == 1
    assert summary.stores == 1
    columnar_summary = ColumnarTrace.from_trace(trace).summary()
    assert columnar_summary == summary


# ---------------------------------------------------------------------------
# bench-gate coherence: one number, used everywhere
# ---------------------------------------------------------------------------


def test_bench_gate_is_coherent():
    """bench.py's default, the CI invocation and the committed report
    must agree (the pre-fix state: default 30%, CI 5%, docs ±20%)."""
    ci = (REPO_ROOT / ".github" / "workflows" / "ci.yml").read_text()
    ci_gate = re.search(r"--max-regression\s+([0-9.]+)", ci)
    assert ci_gate is not None, "CI no longer passes --max-regression"
    assert float(ci_gate.group(1)) == bench.DEFAULT_MAX_REGRESSION
    assert bench.BENCH_REPORT_NAME in ci, (
        "CI checks a different report than bench.BENCH_REPORT_NAME"
    )
    report_path = REPO_ROOT / bench.BENCH_REPORT_NAME
    assert report_path.exists(), f"committed {bench.BENCH_REPORT_NAME} missing"
    report = json.loads(report_path.read_text())
    # the committed reference carries both engines' numbers
    assert report.get("schemes"), "object-engine section missing"
    assert report.get("columnar_schemes"), "columnar-engine section missing"
    for section in ("schemes", "columnar_schemes"):
        for scheme_id, entry in report[section].items():
            assert entry["inst_per_s"] > 0, (section, scheme_id)


def test_check_regression_covers_both_engines():
    committed = {
        "schemes": {"dlvp": {"inst_per_s": 100_000}},
        "columnar_schemes": {"dlvp": {"inst_per_s": 100_000}},
    }
    current = {
        "schemes": {"dlvp": {"inst_per_s": 99_000}},
        "columnar_schemes": {"dlvp": {"inst_per_s": 50_000}},
    }
    failures = bench.check_regression(current, committed, 0.20)
    assert len(failures) == 1
    assert failures[0].startswith("columnar/dlvp")
    # schemes/engines on only one side never fail retroactively
    assert bench.check_regression({"schemes": {}}, committed, 0.20) == []


def test_check_regression_warns_and_skips_mismatched_reports():
    """Report-shape mismatches are warnings, never failures.

    Pre-fix, a fresh cell without ``inst_per_s`` raised KeyError and
    cells on only one side vanished silently; now each mismatch is
    skipped with one collected warning, and only genuine slowdowns of
    comparable cells fail."""
    committed = {
        "schemes": {
            "dlvp": {"inst_per_s": 100_000},
            "retired": {"inst_per_s": 90_000},
            "broken_fresh": {"inst_per_s": 50_000},
            "broken_committed": {"inst_per_s": 0},
        },
    }
    current = {
        "schemes": {
            "dlvp": {"inst_per_s": 95_000},
            "brand_new": {"inst_per_s": 10},
            "broken_fresh": {"wall_s": 1.0},
            "broken_committed": {"inst_per_s": 70_000},
        },
        "columnar_schemes": {"dlvp": {"inst_per_s": 99_000}},
    }
    warnings: list[str] = []
    failures = bench.check_regression(current, committed, 0.20,
                                      warnings=warnings)
    assert failures == []
    text = "\n".join(warnings)
    assert "retired" in text            # committed-only cell skipped
    assert "brand_new" in text          # fresh-only cell skipped
    assert "broken_fresh" in text       # fresh cell lacks inst_per_s
    assert "broken_committed" in text   # committed baseline unusable
    assert "columnar_schemes" in text   # whole engine missing a baseline
    # a genuine regression still fails alongside the warnings
    current["schemes"]["dlvp"]["inst_per_s"] = 10_000
    failures = bench.check_regression(current, committed, 0.20,
                                      warnings=[])
    assert len(failures) == 1 and failures[0].startswith("object/dlvp")
    # and the warnings list stays optional
    assert bench.check_regression({"schemes": {}}, committed, 0.20) == []
