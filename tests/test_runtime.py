"""Tests for :mod:`repro.runtime` — jobs, cache, executors, journal."""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.pipeline import DlvpScheme, RecoveryMode, SimResult, simulate
from repro.runtime import (
    CODE_SALT_ENV,
    Job,
    ParallelExecutor,
    ResultCache,
    Runtime,
    SerialExecutor,
    code_version_salt,
    make_job,
    read_journal,
    register_scheme,
    scheme_ids,
    trace_cache_key,
)
from repro.workloads import build_workload

WORKLOADS = ["gzip", "nat"]
N = 1_500


# Module-level factories: picklable-by-name is not required (jobs carry
# only the scheme id), but module scope keeps them resolvable in forked
# workers and re-importable under spawn.
def _slow_factory():
    time.sleep(30.0)
    return DlvpScheme()


def _raising_factory():
    raise RuntimeError("scheme factory failed on purpose")


def _crashing_factory():
    os._exit(3)


register_scheme("test/slow", _slow_factory)
register_scheme("test/raises", _raising_factory)
register_scheme("test/dies", _crashing_factory)


@pytest.fixture
def uncached_runtime():
    return Runtime(jobs=1, use_cache=False)


class TestJobKeys:
    def test_key_is_deterministic(self):
        a = make_job("gzip", N, "dlvp")
        b = make_job("gzip", N, "dlvp")
        assert a.key == b.key

    def test_key_varies_with_every_identity_field(self):
        base = make_job("gzip", N, "dlvp")
        assert base.key != make_job("nat", N, "dlvp").key
        assert base.key != make_job("gzip", N + 1, "dlvp").key
        assert base.key != make_job("gzip", N, "vtage").key
        assert base.key != make_job(
            "gzip", N, "dlvp", recovery=RecoveryMode.ORACLE_REPLAY
        ).key

    def test_timeout_not_part_of_key(self):
        assert make_job("gzip", N, "dlvp").key == \
            make_job("gzip", N, "dlvp", timeout=5.0).key

    def test_key_depends_on_code_salt(self, monkeypatch):
        before = make_job("gzip", N, "dlvp").key
        monkeypatch.setenv(CODE_SALT_ENV, "different-release")
        code_version_salt.cache_clear()
        try:
            assert make_job("gzip", N, "dlvp").key != before
        finally:
            monkeypatch.delenv(CODE_SALT_ENV)
            code_version_salt.cache_clear()

    def test_key_stable_across_processes(self):
        """A fresh interpreter computes the same salt and job key."""
        code = (
            "from repro.runtime import make_job, code_version_salt\n"
            f"job = make_job('gzip', {N}, 'dlvp')\n"
            "print(code_version_salt())\n"
            "print(job.key)\n"
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env.pop(CODE_SALT_ENV, None)
        out = subprocess.run(
            [sys.executable, "-c", code], env=env, check=True,
            capture_output=True, text=True,
        ).stdout.split()
        code_version_salt.cache_clear()
        assert out[0] == code_version_salt()
        assert out[1] == make_job("gzip", N, "dlvp").key


class TestSimResultRoundTrip:
    @pytest.mark.parametrize("scheme_id", ["baseline", "dlvp", "tournament"])
    def test_round_trip_equality(self, scheme_id, uncached_runtime):
        grid = uncached_runtime.run_grid([scheme_id], ["gzip"], N)
        result = grid.result(scheme_id, "gzip")
        clone = SimResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert clone == result
        assert clone.ipc == result.ipc
        assert clone.value_coverage == result.value_coverage

    def test_schema_version_checked(self):
        trace = build_workload("gzip", N)
        payload = simulate(trace).to_dict()
        payload["schema"] = 999
        with pytest.raises(ValueError, match="schema"):
            SimResult.from_dict(payload)

    def test_v1_payload_still_loads(self):
        # v1 results predate the way-predicted-probe energy split and
        # the PAQ flush counter; they must load with those fields at
        # their zero defaults (the old accounting), not be rejected.
        from repro.pipeline import DlvpScheme

        trace = build_workload("gzip", N)
        payload = simulate(trace, scheme=DlvpScheme()).to_dict()
        payload["schema"] = 1
        payload["energy"].pop("l1d_probes_way_predicted")
        payload["scheme_stats"].pop("probes_way_predicted")
        payload["scheme_stats"].pop("paq_flushed")
        result = SimResult.from_dict(json.loads(json.dumps(payload)))
        assert result.energy.l1d_probes_way_predicted == 0
        assert result.scheme_stats.probes_way_predicted == 0
        assert result.scheme_stats.paq_flushed == 0
        assert result.cycles == payload["cycles"]


class TestResultCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        trace = build_workload("gzip", N)
        result = simulate(trace, scheme=DlvpScheme())
        cache.put("k" * 64, result)
        assert cache.get("k" * 64) == result

    def test_miss_and_corruption_are_none(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("0" * 64) is None
        path = cache.result_path("1" * 64)
        path.parent.mkdir(parents=True)
        path.write_text("{ not json")
        assert cache.get("1" * 64) is None

    def test_trace_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        trace = build_workload("nat", N)
        key = trace_cache_key("nat", N)
        assert cache.get_trace(key) is None
        cache.put_trace(key, trace)
        loaded = cache.get_trace(key)
        assert loaded is not None
        assert loaded.name == trace.name
        assert list(loaded) == list(trace)


class TestCacheLifecycle:
    """LRU accounting behind ``cache gc`` and the serve store bound."""

    @staticmethod
    def _fill(cache, keys):
        trace = build_workload("gzip", N)
        result = simulate(trace, scheme=DlvpScheme())
        for key in keys:
            cache.put(key, result)
        return result

    @staticmethod
    def _age(cache, key, seconds):
        when = time.time() - seconds
        os.utime(cache.result_path(key), (when, when))

    def test_get_refreshes_last_used(self, tmp_path):
        cache = ResultCache(tmp_path)
        a, b = "a" * 64, "b" * 64
        self._fill(cache, [a, b])
        self._age(cache, a, 3600)
        self._age(cache, b, 7200)
        assert cache.get(b) is not None      # touch: b becomes the MRU
        size = cache.result_path(a).stat().st_size
        report = cache.gc(max_size_mb=size * 1.5 / (1024 * 1024))
        assert report["results_removed"] == 1
        assert cache.get(b) is not None      # recently used survives
        assert cache.get(a) is None          # cold entry evicted

    def test_gc_evicts_least_recently_used_first(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = ["a" * 64, "b" * 64, "c" * 64]
        self._fill(cache, keys)
        for key, age in zip(keys, (30, 7200, 3600)):
            self._age(cache, key, age)
        size = cache.result_path(keys[0]).stat().st_size
        report = cache.gc(max_size_mb=size * 1.5 / (1024 * 1024))
        assert report["removed"] == 2 and report["kept"] == 1
        assert cache.get(keys[0]) is not None
        assert cache.get(keys[1]) is None and cache.get(keys[2]) is None

    def test_gc_reports_per_category_counts_and_bytes(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._fill(cache, ["a" * 64])
        cache.put_trace(trace_cache_key("nat", N), build_workload("nat", N))
        expected = sum(
            p.stat().st_size
            for p in (tmp_path / "results").rglob("*") if p.is_file()
        ) + sum(
            p.stat().st_size
            for p in (tmp_path / "traces").rglob("*") if p.is_file()
        )
        report = cache.gc(max_age_days=0.0)
        assert report["results_removed"] == 1
        assert report["traces_removed"] == 1
        assert report["bytes_freed"] == expected
        assert report["kept"] == 0 and report["bytes_kept"] == 0

    def test_stats_counts_sections(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._fill(cache, ["a" * 64, "b" * 64])
        empty_quarantine = cache.stats()["quarantined"]
        path = cache.result_path("c" * 64)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{ corrupt")
        assert cache.get("c" * 64) is None   # quarantines the entry
        stats = cache.stats()
        assert stats["results"] == 2
        assert stats["quarantined"] == empty_quarantine + 1
        assert stats["bytes"] > 0


class TestCacheSemantics:
    def test_cold_then_warm(self, tmp_path):
        cold = Runtime(jobs=1, cache_dir=tmp_path)
        grid_cold = cold.run_grid(["baseline", "dlvp"], WORKLOADS, N)
        cold_summary = cold.journal.summary()
        assert cold_summary["executed"] == 4
        assert cold_summary["cache_hits"] == 0

        warm = Runtime(jobs=1, cache_dir=tmp_path)
        grid_warm = warm.run_grid(["baseline", "dlvp"], WORKLOADS, N)
        warm_summary = warm.journal.summary()
        assert warm_summary["executed"] == 0
        assert warm_summary["cache_hits"] == 4
        for scheme in ("baseline", "dlvp"):
            assert grid_warm.scheme_results(scheme) == \
                grid_cold.scheme_results(scheme)

    def test_no_cache_always_executes(self, tmp_path):
        for _ in range(2):
            runtime = Runtime(jobs=1, cache_dir=tmp_path, use_cache=False)
            runtime.run_grid(["baseline"], ["gzip"], N)
            assert runtime.journal.summary()["executed"] == 1
        assert not (tmp_path / "results").exists()

    def test_duplicate_jobs_deduplicated(self, uncached_runtime):
        job = make_job("gzip", N, "baseline")
        outcomes = uncached_runtime.run_jobs([job, job, job])
        assert len(outcomes) == 1
        assert uncached_runtime.journal.summary()["executed"] == 1


class TestExecutors:
    def test_serial_and_parallel_results_identical(self, tmp_path):
        serial = Runtime(jobs=1, use_cache=False)
        parallel = Runtime(jobs=2, use_cache=False)
        grid_s = serial.run_grid(["baseline", "dlvp"], WORKLOADS, N)
        grid_p = parallel.run_grid(["baseline", "dlvp"], WORKLOADS, N)
        for scheme in ("baseline", "dlvp"):
            assert grid_s.scheme_results(scheme) == grid_p.scheme_results(scheme)
        assert grid_s.speedups("dlvp") == grid_p.speedups("dlvp")

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_job_timeout(self, jobs):
        runtime = Runtime(jobs=jobs, use_cache=False, timeout=1.0)
        outcomes = runtime.run_jobs([make_job("gzip", N, "test/slow",
                                              timeout=1.0)])
        (outcome,) = outcomes.values()
        assert outcome.status == "timeout"
        assert outcome.result is None
        assert "timeout" in (outcome.error or "")
        assert runtime.journal.summary()["timed_out"] == 1

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_raising_worker_bounded_retries(self, jobs):
        runtime = Runtime(jobs=jobs, use_cache=False, retries=1)
        outcomes = runtime.run_jobs([make_job("gzip", N, "test/raises")])
        (outcome,) = outcomes.values()
        assert outcome.status == "error"
        assert outcome.attempts == 2
        assert "scheme factory failed on purpose" in outcome.error

    def test_worker_crash_marks_one_cell_not_the_run(self):
        runtime = Runtime(jobs=2, use_cache=False, retries=1)
        jobs = [
            make_job("gzip", N, "dlvp"),
            make_job("gzip", N, "test/dies"),
            make_job("nat", N, "baseline"),
        ]
        outcomes = runtime.run_jobs(jobs)
        assert outcomes[jobs[0].key].status == "ok"
        assert outcomes[jobs[2].key].status == "ok"
        crashed = outcomes[jobs[1].key]
        assert crashed.status == "error"
        assert "worker process died" in crashed.error

    def test_executor_objects_run_raw_jobs(self):
        job = make_job("gzip", N, "baseline")
        serial = SerialExecutor().run([job])
        parallel = ParallelExecutor(max_workers=2).run([job])
        assert serial[0].ok and parallel[0].ok
        assert serial[0].result == parallel[0].result


class TestJournal:
    def test_jsonl_file_round_trip(self, tmp_path):
        journal_path = tmp_path / "run.jsonl"
        runtime = Runtime(jobs=1, cache_dir=tmp_path,
                          journal_path=journal_path)
        runtime.run_grid(["baseline"], ["gzip"], N)
        events = read_journal(journal_path)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "run_started"
        assert kinds[-1] == "run_finished"
        assert "job_submitted" in kinds
        assert "cache_miss" in kinds
        finished = [e for e in events if e["event"] == "job_finished"]
        assert len(finished) == 1
        assert finished[0]["status"] == "ok"
        assert finished[0]["duration"] > 0

    def test_warm_run_journal_proves_zero_executions(self, tmp_path):
        Runtime(jobs=1, cache_dir=tmp_path).run_grid(["baseline"], ["gzip"], N)
        journal_path = tmp_path / "warm.jsonl"
        warm = Runtime(jobs=1, cache_dir=tmp_path, journal_path=journal_path)
        warm.run_grid(["baseline"], ["gzip"], N)
        events = read_journal(journal_path)
        assert sum(e["event"] == "cache_hit" for e in events) == 1
        assert sum(e["event"] == "job_started" for e in events) == 0
        assert sum(e["event"] == "job_finished" for e in events) == 0

    def test_format_summary_mentions_failures(self):
        runtime = Runtime(jobs=1, use_cache=False, retries=0)
        runtime.run_jobs([make_job("gzip", N, "test/raises")])
        assert "FAILED" in runtime.journal.format_summary()

    def test_concurrent_appends_never_tear_lines(self, tmp_path):
        """Many processes appending to one journal: every line intact.

        The serve gateway and any number of CLI runs may share a
        journal path; each event must be a single ``O_APPEND`` write so
        concurrent writers interleave whole lines, never fragments."""
        path = tmp_path / "shared.jsonl"
        writers, events_each = 4, 200
        script = (
            "import sys\n"
            "from repro.runtime import RunJournal\n"
            "journal = RunJournal(sys.argv[1])\n"
            "writer = sys.argv[2]\n"
            f"for i in range({events_each}):\n"
            "    journal.event('torn_line_probe', writer=writer, seq=i,\n"
            "                  pad='x' * 2048)\n"
            "journal.close()\n"
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(path), f"w{i}"], env=env
            )
            for i in range(writers)
        ]
        assert all(proc.wait(timeout=120) == 0 for proc in procs)
        lines = path.read_bytes().decode("utf-8").splitlines()
        assert len(lines) == writers * events_each
        parsed = [json.loads(line) for line in lines]   # no torn JSON
        per_writer = {}
        for entry in parsed:
            per_writer.setdefault(entry["writer"], []).append(entry["seq"])
        assert set(per_writer) == {f"w{i}" for i in range(writers)}
        for seqs in per_writer.values():
            assert seqs == list(range(events_each))     # per-writer order


class TestRegistry:
    def test_builtins_registered(self):
        for scheme_id in ("baseline", "dlvp", "cap", "vtage", "dvtage",
                          "tournament"):
            assert scheme_id in scheme_ids()

    def test_reregistration_same_config_is_noop(self):
        spec = register_scheme("test/slow", _slow_factory)
        assert spec.scheme_id == "test/slow"

    def test_conflicting_reregistration_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scheme("test/slow", _slow_factory, config={"other": 1})

    def test_unknown_scheme_id(self):
        with pytest.raises(KeyError, match="unknown scheme id"):
            make_job("gzip", N, "no-such-scheme")
