"""Tests for the Figure 1/2 trace profilers and the trace container."""

from hypothesis import given, strategies as st

from repro.isa import Instruction, OpClass
from repro.trace import Trace, load_store_conflicts, repeatability


def load(pc, addr, value=1, size=8):
    return Instruction(pc=pc, op=OpClass.LOAD, dests=(1,), mem_addr=addr,
                       mem_size=size, values=(value,))


def store(pc, addr, value=9, size=8):
    return Instruction(pc=pc, op=OpClass.STORE, mem_addr=addr, mem_size=size,
                       values=(value,))


def alu(pc=0x50):
    return Instruction(pc=pc, op=OpClass.ALU, dests=(2,), values=(0,))


class TestTraceContainer:
    def test_len_and_iter(self):
        t = Trace("t", [load(0x10, 0x100), store(0x14, 0x200)])
        assert len(t) == 2
        assert [i.pc for i in t] == [0x10, 0x14]

    def test_loads_and_stores_iterators(self):
        t = Trace("t", [load(0x10, 0x100), alu(), store(0x18, 0x200)])
        assert [i for i, _ in t.loads()] == [0]
        assert [i for i, _ in t.stores()] == [2]

    def test_summary(self):
        t = Trace("t", [
            load(0x10, 0x100),
            load(0x10, 0x108),
            Instruction(pc=0x14, op=OpClass.LOAD, dests=(1, 2), mem_addr=0x200,
                        mem_size=8, values=(0, 0)),
            Instruction(pc=0x18, op=OpClass.BRANCH, taken=True, target=0x10),
            store(0x1C, 0x300),
        ])
        s = t.summary()
        assert s.instructions == 5
        assert s.loads == 3
        assert s.static_loads == 2
        assert s.multi_dest_loads == 1
        assert s.branches == 1
        assert s.stores == 1
        assert 0 < s.load_fraction < 1


class TestConflictProfile:
    def test_no_conflict_without_store(self):
        t = Trace("t", [load(0x10, 0x100), load(0x10, 0x100)])
        p = load_store_conflicts(t)
        assert p.conflicts == 0
        assert p.repeat_loads == 1

    def test_committed_conflict(self):
        insts = [load(0x10, 0x100), store(0x20, 0x100)]
        insts += [alu() for _ in range(300)]      # push store out of window
        insts += [load(0x10, 0x100)]
        p = load_store_conflicts(Trace("t", insts), window=224)
        assert p.conflict_committed == 1
        assert p.conflict_inflight == 0
        assert p.committed_share == 1.0

    def test_inflight_conflict(self):
        insts = [load(0x10, 0x100), store(0x20, 0x100), load(0x10, 0x100)]
        p = load_store_conflicts(Trace("t", insts), window=224)
        assert p.conflict_inflight == 1
        assert p.fraction_inflight > 0

    def test_store_before_first_instance_not_counted(self):
        insts = [store(0x20, 0x100), load(0x10, 0x100), load(0x10, 0x100)]
        p = load_store_conflicts(Trace("t", insts))
        assert p.conflicts == 0

    def test_partial_overlap_detected(self):
        # 8-byte store overlapping the second word of an 8-byte load.
        insts = [load(0x10, 0x100), store(0x20, 0x104, size=4), load(0x10, 0x100)]
        p = load_store_conflicts(Trace("t", insts))
        assert p.conflicts == 1

    def test_disjoint_store_ignored(self):
        insts = [load(0x10, 0x100), store(0x20, 0x200), load(0x10, 0x100)]
        p = load_store_conflicts(Trace("t", insts))
        assert p.conflicts == 0

    def test_multi_dest_footprint_checked(self):
        wide = Instruction(pc=0x10, op=OpClass.LOAD, dests=(1, 2), mem_addr=0x100,
                           mem_size=8, values=(0, 0))
        insts = [wide, store(0x20, 0x108), wide]
        p = load_store_conflicts(Trace("t", insts))
        assert p.conflicts == 1

    @given(st.lists(
        st.tuples(st.booleans(),
                  st.integers(min_value=0, max_value=7),
                  st.integers(min_value=0, max_value=3)),
        max_size=60,
    ))
    def test_invariants_on_random_traces(self, spec):
        insts = []
        for is_load, addr_slot, pc_slot in spec:
            addr = 0x100 + addr_slot * 8
            if is_load:
                insts.append(load(0x10 + pc_slot * 4, addr))
            else:
                insts.append(store(0x50, addr))
        p = load_store_conflicts(Trace("t", insts), window=8)
        assert 0 <= p.conflicts <= p.repeat_loads <= p.total_loads
        assert 0.0 <= p.fraction_conflicting <= 1.0


class TestRepeatability:
    def test_single_occurrence_buckets(self):
        t = Trace("t", [load(0x10, 0x100, value=5)])
        p = repeatability(t)
        assert p.address_buckets == {1: 1}
        assert p.fraction_repeating("address", 1) == 1.0
        assert p.fraction_repeating("address", 2) == 0.0

    def test_repeated_address_different_value(self):
        t = Trace("t", [load(0x10, 0x100, value=1), load(0x10, 0x100, value=2)])
        p = repeatability(t)
        assert p.fraction_repeating("address", 2) == 1.0
        assert p.fraction_repeating("value", 2) == 0.0

    def test_value_repeats_across_addresses_counted_per_load(self):
        t = Trace("t", [load(0x10, 0x100, value=7), load(0x10, 0x108, value=7)])
        p = repeatability(t)
        assert p.fraction_repeating("value", 2) == 1.0
        assert p.fraction_repeating("address", 2) == 0.0

    def test_per_static_load_isolation(self):
        t = Trace("t", [load(0x10, 0x100), load(0x20, 0x100)])
        p = repeatability(t)
        # Same address but different static loads: no repetition.
        assert p.fraction_repeating("address", 2) == 0.0

    def test_breakdown_is_monotone(self):
        insts = [load(0x10, 0x100, value=3) for _ in range(100)]
        p = repeatability(Trace("t", insts))
        series = p.breakdown("address")
        values = list(series.values())
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_invalid_kind(self):
        p = repeatability(Trace("t", [load(0x10, 0x100)]))
        import pytest
        with pytest.raises(ValueError):
            p.fraction_repeating("bogus", 1)
