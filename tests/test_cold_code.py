"""Tests for the cold-code sprinkling infrastructure."""


from repro.isa import OpClass
from repro.memory import MemoryImage
from repro.workloads.base import (
    _COLD_CODE_BASE,
    WorkloadSpec,
)
from repro.workloads.kernels import streaming_sum


def spec(cold_fraction):
    return WorkloadSpec(name="t", group="x", kernel=streaming_sum,
                        params={}, seed=5, cold_fraction=cold_fraction)


class TestColdCode:
    def test_zero_fraction_means_no_cold(self):
        trace = spec(0.0).build(4000)
        assert all(i.pc < _COLD_CODE_BASE for i in trace)

    def test_fraction_roughly_respected(self):
        trace = spec(0.15).build(8000)
        cold = sum(1 for i in trace if i.pc >= _COLD_CODE_BASE)
        assert 0.05 < cold / len(trace) < 0.30

    def test_cold_blocks_are_bursty(self):
        trace = spec(0.10).build(10_000)
        flags = [i.pc >= _COLD_CODE_BASE for i in trace]
        transitions = sum(1 for a, b in zip(flags, flags[1:]) if a != b)
        cold_total = sum(flags)
        # Bursts mean few hot/cold transitions relative to cold mass.
        assert transitions < cold_total / 4

    def test_cold_loads_do_not_break_replay(self):
        trace = spec(0.12).build(6000)
        image = MemoryImage()
        for inst in trace:
            if inst.op == OpClass.STORE:
                image.write(inst.mem_addr, inst.mem_size, inst.values[0])
            elif inst.op == OpClass.LOAD:
                for k, v in enumerate(inst.values):
                    assert image.read(inst.mem_addr + k * inst.mem_size,
                                      inst.mem_size) == v

    def test_cold_branches_not_taken(self):
        trace = spec(0.10).build(6000)
        cold_branches = [i for i in trace
                         if i.is_branch and i.pc >= _COLD_CODE_BASE]
        assert cold_branches
        assert all(i.taken is False for i in cold_branches)

    def test_cold_static_pcs_are_diverse(self):
        trace = spec(0.10).build(12_000)
        cold_load_pcs = {i.pc for i in trace
                         if i.is_load and i.pc >= _COLD_CODE_BASE}
        assert len(cold_load_pcs) > 40
