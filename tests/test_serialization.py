"""Trace serialization roundtrip tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import Instruction, OpClass
from repro.trace import Trace, load_trace, save_trace


def roundtrip(tmp_path, trace):
    path = tmp_path / "trace.txt"
    save_trace(trace, path)
    return load_trace(path)


class TestRoundtrip:
    def test_empty_trace(self, tmp_path):
        out = roundtrip(tmp_path, Trace("empty", []))
        assert out.name == "empty"
        assert len(out) == 0

    def test_mixed_instructions(self, tmp_path):
        insts = [
            Instruction(pc=0x10, op=OpClass.LOAD, srcs=(3,), dests=(1, 2),
                        mem_addr=0x100, mem_size=8, values=(5, 6)),
            Instruction(pc=0x14, op=OpClass.STORE, mem_addr=0x200, mem_size=4,
                        values=(7,)),
            Instruction(pc=0x18, op=OpClass.BRANCH, taken=False, target=0x1C),
            Instruction(pc=0x1C, op=OpClass.ALU, dests=(4,), values=(9,)),
            Instruction(pc=0x20, op=OpClass.LOAD, dests=(1,), mem_addr=0x300,
                        mem_size=16, values=(1 << 100,), is_vector=True),
        ]
        out = roundtrip(tmp_path, Trace("mix", insts))
        assert out.instructions == insts

    def test_workload_roundtrip(self, tmp_path):
        from repro.workloads import build_workload
        trace = build_workload("aifirf", 800)
        out = roundtrip(tmp_path, trace)
        assert out.instructions == trace.instructions
        assert out.name == trace.name


class TestValidation:
    def test_bad_magic_rejected(self, tmp_path):
        p = tmp_path / "bad.txt"
        p.write_text("not-a-trace foo 0\n")
        with pytest.raises(ValueError, match="not a"):
            load_trace(p)

    def test_truncated_body_rejected(self, tmp_path):
        p = tmp_path / "short.txt"
        p.write_text("repro-trace-v1 t 2\n16 0 - 1 - 8 3 - - 0\n")
        with pytest.raises(ValueError, match="declares"):
            load_trace(p)

    def test_empty_file_rejected(self, tmp_path):
        p = tmp_path / "empty.txt"
        p.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_trace(p)

    def test_malformed_line_rejected(self, tmp_path):
        p = tmp_path / "mal.txt"
        p.write_text("repro-trace-v1 t 1\n16 0 -\n")
        with pytest.raises(ValueError, match="malformed"):
            load_trace(p)


@st.composite
def instructions(draw):
    kind = draw(st.sampled_from(["load", "store", "branch", "alu"]))
    pc = draw(st.integers(min_value=0, max_value=1 << 20)) * 4
    if kind == "load":
        n = draw(st.integers(min_value=1, max_value=3))
        return Instruction(
            pc=pc, op=OpClass.LOAD,
            dests=tuple(range(1, n + 1)),
            mem_addr=draw(st.integers(min_value=0, max_value=1 << 20)) * 8,
            mem_size=8,
            values=tuple(draw(st.integers(min_value=0, max_value=(1 << 64) - 1))
                         for _ in range(n)),
        )
    if kind == "store":
        return Instruction(pc=pc, op=OpClass.STORE,
                           mem_addr=draw(st.integers(min_value=0, max_value=1 << 20)) * 8,
                           mem_size=8,
                           values=(draw(st.integers(min_value=0, max_value=(1 << 64) - 1)),))
    if kind == "branch":
        return Instruction(pc=pc, op=OpClass.BRANCH,
                           taken=draw(st.booleans()), target=pc + 8)
    return Instruction(pc=pc, op=OpClass.ALU, dests=(1,),
                       values=(draw(st.integers(min_value=0, max_value=(1 << 64) - 1)),))


@settings(max_examples=30)
@given(st.lists(instructions(), max_size=40))
def test_roundtrip_property(tmp_path_factory, insts):
    tmp = tmp_path_factory.mktemp("traces")
    trace = Trace("prop", insts)
    path = tmp / "t.txt"
    save_trace(trace, path)
    assert load_trace(path).instructions == insts
