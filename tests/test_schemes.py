"""Integration tests for the pipeline-facing value-prediction schemes."""

import pytest

from repro.core.dlvp import DlvpStats
from repro.pipeline import (
    DlvpScheme,
    TournamentScheme,
    VtageScheme,
    simulate,
)
from repro.pipeline.schemes import TournamentStats
from repro.predictors import CapConfig
from repro.predictors.base import PredictorStats
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def trace():
    return build_workload("vortex", 6000)


class TestDlvpScheme:
    def test_result_stats_type(self, trace):
        r = simulate(trace, scheme=DlvpScheme())
        assert isinstance(r.scheme_stats, DlvpStats)

    def test_loads_accounted(self, trace):
        r = simulate(trace, scheme=DlvpScheme())
        assert r.scheme_stats.loads_seen == r.loads

    def test_value_counts_consistent(self, trace):
        r = simulate(trace, scheme=DlvpScheme())
        stats = r.scheme_stats
        assert stats.value_predictions == r.value_predictions
        assert stats.value_predictions <= stats.address_predictions

    def test_probe_counts_consistent(self, trace):
        r = simulate(trace, scheme=DlvpScheme())
        stats = r.scheme_stats
        assert stats.probes == stats.probe_hits + stats.probe_misses
        assert stats.value_predictions <= stats.probe_hits

    def test_cap_variant(self, trace):
        scheme = DlvpScheme(use_cap=True,
                            cap_config=CapConfig(confidence_threshold=24))
        r = simulate(trace, scheme=scheme)
        assert r.scheme_name == "cap"
        assert isinstance(r.scheme_stats, DlvpStats)

    def test_storage_bits_include_way_field(self, trace):
        scheme = DlvpScheme()
        simulate(trace, scheme=scheme)
        assert scheme.predictor_storage_bits() == 1024 * 69   # 67 + 2-bit way


class TestVtageScheme:
    def test_result_stats_type(self, trace):
        r = simulate(trace, scheme=VtageScheme())
        assert isinstance(r.scheme_stats, PredictorStats)

    def test_accuracy_high(self, trace):
        r = simulate(trace, scheme=VtageScheme())
        if r.value_predictions > 50:
            assert r.value_accuracy > 0.95


class TestTournamentScheme:
    def test_combined_stats_structure(self, trace):
        r = simulate(trace, scheme=TournamentScheme())
        assert isinstance(r.scheme_stats, dict)
        assert isinstance(r.scheme_stats["tournament"], TournamentStats)
        assert isinstance(r.scheme_stats["dlvp"], DlvpStats)
        assert isinstance(r.scheme_stats["vtage"], PredictorStats)

    def test_breakdown_sums_to_final(self, trace):
        r = simulate(trace, scheme=TournamentScheme())
        t = r.scheme_stats["tournament"]
        assert t.final_by_dlvp + t.final_by_vtage == t.final_predictions
        assert t.final_predictions <= t.loads

    def test_tournament_coverage_at_least_best_single(self, trace):
        dlvp = simulate(trace, scheme=DlvpScheme())
        tourney = simulate(trace, scheme=TournamentScheme())
        # Coverage overlap: combined should be >= DLVP alone - small slack.
        assert tourney.value_coverage >= dlvp.value_coverage - 0.05

    def test_storage_is_sum_of_parts(self, trace):
        scheme = TournamentScheme()
        simulate(trace, scheme=scheme)
        total = scheme.predictor_storage_bits()
        assert total > scheme.dlvp.predictor_storage_bits()
        assert total > scheme.vtage.predictor_storage_bits()
