"""The shared trace fabric: publish once, attach zero-copy anywhere.

Three invariant families:

* **Losslessness** — a ``ColumnarTrace`` published into a segment and
  attached back converts to the *exact* original ``Trace``
  (property-based, covering ``taken=None``, 128-bit vector values,
  multi-destination loads, empty traces), over both transports (POSIX
  shared memory and the mmap-over-file fallback).
* **Lifecycle** — closing the store unlinks every segment (no
  ``/dev/shm`` leaks), even when a fault-injected pool worker is
  SIGKILL'd mid-grid; dead-owner orphans are GC'd at store
  construction; attached traces are read-only; attach of a torn or
  unlinked segment fails loudly so callers fall back to building.
* **Bookkeeping** — refs are idempotent per key, attachments are
  refcounted, and handles close idempotently.

The *simulated-outcome* equivalence of attached traces lives in
``test_golden_simresults.py``'s "shared" engine leg.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import Instruction, OpClass
from repro.trace import ColumnarTrace, Trace
from repro.trace.share import (
    MAGIC,
    SEGMENT_PREFIX,
    _OWNER,
    TraceStore,
    attach,
    gc_orphans,
    shm_available,
)

_U64 = st.integers(min_value=0, max_value=2**64 - 1)
_U128 = st.integers(min_value=0, max_value=2**128 - 1)
_REG = st.integers(min_value=0, max_value=2**32 - 1)
_PC = st.integers(min_value=0, max_value=2**62 - 1).map(lambda v: v * 4)


@st.composite
def instructions(draw) -> Instruction:
    op = draw(st.sampled_from(list(OpClass)))
    kwargs = {"pc": draw(_PC), "op": op}
    if op == OpClass.LOAD:
        ndests = draw(st.integers(min_value=1, max_value=4))
        is_vector = draw(st.booleans())
        values = st.lists(_U128 if is_vector else _U64,
                          min_size=ndests, max_size=ndests)
        kwargs.update(
            dests=tuple(draw(st.lists(_REG, min_size=ndests, max_size=ndests))),
            values=tuple(draw(values)),
            mem_addr=draw(_U64),
            mem_size=16 if is_vector else draw(st.sampled_from([1, 2, 4, 8])),
            is_vector=is_vector,
            srcs=tuple(draw(st.lists(_REG, max_size=3))),
        )
    elif op == OpClass.STORE:
        kwargs.update(
            mem_addr=draw(_U64),
            mem_size=draw(st.sampled_from([1, 2, 4, 8])),
            values=(draw(_U64),),
            srcs=tuple(draw(st.lists(_REG, max_size=3))),
        )
    elif op == OpClass.BRANCH:
        kwargs.update(
            taken=draw(st.none() | st.booleans()),
            target=draw(st.none() | _PC),
        )
    elif op in (OpClass.JUMP, OpClass.CALL, OpClass.RETURN, OpClass.INDIRECT):
        kwargs.update(target=draw(st.none() | _PC))
    else:
        kwargs.update(
            srcs=tuple(draw(st.lists(_REG, max_size=3))),
            dests=tuple(draw(st.lists(_REG, max_size=2))),
            values=tuple(draw(st.lists(_U64, max_size=2))),
        )
    return Instruction(**kwargs)


traces = st.lists(instructions(), max_size=40).map(
    lambda insts: Trace("prop", insts)
)

TRANSPORTS = [False] + ([True] if shm_available() else [])


def _shm_segments() -> list[str]:
    shm = Path("/dev/shm")
    if not shm.is_dir():
        return []
    return sorted(p.name for p in shm.glob(SEGMENT_PREFIX + "*"))


# ---------------------------------------------------------------------------
# losslessness
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("use_shm", TRANSPORTS)
@settings(max_examples=40, deadline=None)
@given(trace=traces)
def test_publish_attach_roundtrip_lossless(use_shm, trace):
    """Trace → columnar → segment → attached → Trace, bit for bit."""
    with TraceStore(use_shm=use_shm) as store:
        ref = store.publish("prop", ColumnarTrace.from_trace(trace))
        with store.attach(ref) as handle:
            assert len(handle.trace) == len(trace)
            back = handle.trace.to_trace()
            assert back.name == trace.name
            assert list(back.instructions) == list(trace.instructions)


@pytest.mark.parametrize("use_shm", TRANSPORTS)
def test_empty_trace_roundtrip(use_shm):
    with TraceStore(use_shm=use_shm) as store:
        ref = store.publish("empty", ColumnarTrace("empty"))
        with store.attach(ref) as handle:
            assert len(handle.trace) == 0
            assert handle.trace.to_trace().instructions == []


# ---------------------------------------------------------------------------
# lifecycle
# ---------------------------------------------------------------------------


@pytest.mark.skipif(not shm_available(), reason="no POSIX shared memory")
def test_store_close_leaves_no_shm_segments():
    before = _shm_segments()
    store = TraceStore(use_shm=True)
    trace = ColumnarTrace.from_trace(
        Trace("leak", [Instruction(pc=4, op=OpClass.ALU)])
    )
    refs = [store.publish(f"k{i}", trace) for i in range(3)]
    handles = [store.attach(ref) for ref in refs]
    assert len(_shm_segments()) == len(before) + 3
    # close() without closing handles first: the store owns them too
    assert handles
    store.close()
    assert _shm_segments() == before
    store.close()      # idempotent


def test_file_fallback_segments_removed_on_close(tmp_path):
    store = TraceStore(root=tmp_path, use_shm=False)
    ref = store.publish("k", ColumnarTrace("k"))
    assert ref.startswith("file:")
    assert list(tmp_path.glob(SEGMENT_PREFIX + "*"))
    store.close()
    assert not list(tmp_path.glob(SEGMENT_PREFIX + "*"))


def test_gc_orphans_reaps_dead_owner_only(tmp_path):
    dead_pid = 2 ** 22 + 12345          # far above any real pid here
    trace_bytes = b"torn-but-irrelevant-payload"
    orphan = tmp_path / (SEGMENT_PREFIX + "orphan")
    orphan.write_bytes(MAGIC + _OWNER.pack(dead_pid) + trace_bytes)
    live = tmp_path / (SEGMENT_PREFIX + "live")
    live.write_bytes(MAGIC + _OWNER.pack(os.getpid()) + trace_bytes)
    alien = tmp_path / (SEGMENT_PREFIX + "alien")
    alien.write_bytes(b"some other format entirely")
    removed = gc_orphans(tmp_path)
    assert orphan.name in removed
    assert not orphan.exists()
    assert live.exists()                # owner alive: not ours to reap
    assert alien.exists()               # wrong magic: not ours at all


def test_store_construction_runs_orphan_gc(tmp_path):
    orphan = tmp_path / (SEGMENT_PREFIX + "stale")
    orphan.write_bytes(MAGIC + _OWNER.pack(2 ** 22 + 999) + b"x")
    with TraceStore(root=tmp_path, use_shm=False) as store:
        assert orphan.name in store.orphans_removed
        assert not orphan.exists()


def test_attached_trace_is_read_only():
    trace = Trace("ro", [Instruction(pc=4, op=OpClass.ALU)])
    with TraceStore(use_shm=False) as store:
        ref = store.publish("ro", ColumnarTrace.from_trace(trace))
        with store.attach(ref) as handle:
            with pytest.raises(TypeError):
                handle.trace.append(Instruction(pc=8, op=OpClass.ALU))


def test_attach_failures_are_loud(tmp_path):
    with pytest.raises(ValueError):
        attach("not-a-ref")
    with pytest.raises(ValueError):
        attach("shm:")                  # malformed: empty ident
    with pytest.raises(FileNotFoundError):
        attach(f"file:{tmp_path / 'missing'}")
    torn = tmp_path / "torn"
    torn.write_bytes(b"wrong magic entirely" + b"\0" * 64)
    with pytest.raises(ValueError):
        attach(f"file:{torn}")
    if shm_available():
        with pytest.raises(FileNotFoundError):
            attach("shm:" + SEGMENT_PREFIX + "never-published")


def test_attach_after_unlink_fails(tmp_path):
    store = TraceStore(root=tmp_path, use_shm=False)
    ref = store.publish("k", ColumnarTrace("k"))
    store.unlink("k")
    with pytest.raises(FileNotFoundError):
        attach(ref)
    store.close()


def test_worker_crash_leaves_no_segments(tmp_path):
    """A SIGKILL'd fabric worker must not leak its attached segment."""
    if not shm_available():
        pytest.skip("no POSIX shared memory")
    from repro.runtime import Runtime

    before = _shm_segments()
    runtime = Runtime(jobs=2, cache_dir=tmp_path, retries=1,
                      trace_format="shared", faults="crash@gzip/dlvp:1")
    grid = runtime.run_grid(["baseline", "dlvp"], ["gzip"], 1_000)
    assert not grid.failures()
    assert _shm_segments() == before


# ---------------------------------------------------------------------------
# bookkeeping
# ---------------------------------------------------------------------------


def test_publish_is_idempotent_per_key():
    a = ColumnarTrace.from_trace(Trace("a", [Instruction(pc=4, op=OpClass.ALU)]))
    with TraceStore(use_shm=False) as store:
        ref1 = store.publish("k", a)
        ref2 = store.publish("k", ColumnarTrace("ignored"))
        assert ref1 == ref2
        assert store.ref_for("k") == ref1
        assert store.ref_for("other") is None


def test_attachment_refcounting():
    trace = ColumnarTrace.from_trace(
        Trace("rc", [Instruction(pc=4, op=OpClass.ALU)])
    )
    with TraceStore(use_shm=False) as store:
        ref = store.publish("rc", trace)
        h1 = store.attach(ref)
        h2 = store.attach(ref)
        assert store.attachments() == 2
        assert store.attachments(ref) == 2
        h1.close()
        h1.close()                      # idempotent
        assert store.attachments(ref) == 1
        assert h1.closed and not h2.closed
        h2.close()
        assert store.attachments() == 0
