"""Tests for the Path-based Address Predictor (the paper's core)."""

import pytest

from repro.predictors import AptEntryLayout, LoadPathHistory, PapConfig, PapPredictor


def train_to_confidence(pap, index, tag, addr, size=8, way=0, rounds=64):
    """Train one entry until it predicts (FPC is probabilistic)."""
    for _ in range(rounds):
        pap.train(index, tag, addr, size, way)
        if pap.predict(index, tag) is not None:
            return True
    return False


class TestKeys:
    def test_key_depends_on_history(self):
        pap = PapPredictor()
        k1 = pap.compute_key(0x1000)
        pap.history.push_load(0x1004)
        k2 = pap.compute_key(0x1000)
        assert k1 != k2

    def test_key_stable_for_same_history(self):
        pap = PapPredictor()
        assert pap.compute_key(0x1000) == pap.compute_key(0x1000)

    def test_explicit_history_value(self):
        pap = PapPredictor()
        assert pap.compute_key(0x1000, history_value=5) == pap.compute_key(0x1000, 5)

    def test_strided_pcs_do_not_alias(self):
        # Regularly strided static code (0x100 apart) must spread over
        # the APT; systematic aliasing was a real bug once.
        pap = PapPredictor()
        indices = {pap.compute_key(0x40000 + i * 0x100)[0] for i in range(48)}
        assert len(indices) >= 44

    def test_index_and_tag_in_range(self):
        pap = PapPredictor()
        for pc in range(0x1000, 0x3000, 4):
            index, tag = pap.compute_key(pc)
            assert 0 <= index < pap.config.entries
            assert 0 <= tag < (1 << pap.config.tag_bits)


class TestTraining:
    def test_no_prediction_untrained(self):
        pap = PapPredictor()
        index, tag = pap.compute_key(0x1000)
        assert pap.predict(index, tag) is None

    def test_confidence_gates_prediction(self):
        pap = PapPredictor()
        index, tag = pap.compute_key(0x1000)
        pap.train(index, tag, 0x5000, 8, 0)     # allocate, conf 0
        assert pap.predict(index, tag) is None

    def test_stable_address_becomes_predictable(self):
        pap = PapPredictor()
        index, tag = pap.compute_key(0x1000)
        assert train_to_confidence(pap, index, tag, 0x5000)
        pred = pap.predict(index, tag)
        assert pred.addr == 0x5000
        assert pred.size == 8

    def test_address_change_resets_confidence(self):
        pap = PapPredictor()
        index, tag = pap.compute_key(0x1000)
        train_to_confidence(pap, index, tag, 0x5000)
        pap.train(index, tag, 0x6000, 8, 0)
        assert pap.predict(index, tag) is None
        assert pap.confidence_resets == 1

    def test_reallocated_entry_learns_new_address(self):
        pap = PapPredictor()
        index, tag = pap.compute_key(0x1000)
        train_to_confidence(pap, index, tag, 0x5000)
        assert train_to_confidence(pap, index, tag, 0x6000)
        assert pap.predict(index, tag).addr == 0x6000

    def test_way_and_size_follow_training(self):
        pap = PapPredictor()
        index, tag = pap.compute_key(0x1000)
        train_to_confidence(pap, index, tag, 0x5000, size=8, way=1)
        pap.train(index, tag, 0x5000, 16, 3)
        pred = pap.predict(index, tag)
        assert pred.size == 16
        assert pred.way == 3

    def test_way_prediction_disabled(self):
        pap = PapPredictor(PapConfig(way_prediction=False))
        index, tag = pap.compute_key(0x1000)
        train_to_confidence(pap, index, tag, 0x5000, way=2)
        assert pap.predict(index, tag).way is None


class TestAllocationPolicy:
    def test_policy2_confident_entry_survives_one_miss(self):
        pap = PapPredictor()
        index, tag = pap.compute_key(0x1000)
        train_to_confidence(pap, index, tag, 0x5000)
        allocations_before = pap.allocations
        # A different tag probing the same entry decrements, not replaces.
        other_tag = (tag + 1) % (1 << pap.config.tag_bits)
        pap.train(index, other_tag, 0x9000, 8, 0)
        assert pap.allocations == allocations_before     # survived
        # Retraining quickly restores the (still-resident) entry.
        assert train_to_confidence(pap, index, tag, 0x5000, rounds=16)
        assert pap.predict(index, tag).addr == 0x5000

    def test_policy2_unconfident_entry_replaced(self):
        pap = PapPredictor()
        index, tag = pap.compute_key(0x1000)
        pap.train(index, tag, 0x5000, 8, 0)      # conf 0
        other_tag = (tag + 1) % (1 << pap.config.tag_bits)
        pap.train(index, other_tag, 0x9000, 8, 0)
        assert pap.predict(index, tag) is None
        assert pap.allocations == 2

    def test_policy1_always_replaces(self):
        pap = PapPredictor(PapConfig(allocation_policy=1))
        index, tag = pap.compute_key(0x1000)
        train_to_confidence(pap, index, tag, 0x5000)
        other_tag = (tag + 1) % (1 << pap.config.tag_bits)
        pap.train(index, other_tag, 0x9000, 8, 0)
        # The original entry is gone immediately under Policy-1.
        assert pap.predict(index, tag) is None

    def test_policy2_beats_policy1_under_interleaving(self):
        """The paper's stated reason for Policy-2: confident entries
        survive interference from colliding loads."""
        def run(policy):
            pap = PapPredictor(PapConfig(allocation_policy=policy, seed=3))
            index, tag = pap.compute_key(0x1000)
            rare_tag = (tag + 7) % (1 << pap.config.tag_bits)
            predictions = 0
            for i in range(400):
                pred = pap.predict(index, tag)
                if pred is not None:
                    predictions += 1
                pap.train(index, tag, 0x5000, 8, 0)
                if i % 5 == 4:      # occasional colliding rare load
                    pap.train(index, rare_tag, 0x8000, 8, 0)
            return predictions
        assert run(2) > run(1)


class TestStatsAndLayout:
    def test_record_outcome_counts(self):
        pap = PapPredictor()
        index, tag = pap.compute_key(0x1000)
        train_to_confidence(pap, index, tag, 0x5000)
        pred = pap.predict(index, tag)
        assert pap.record_outcome(pred, 0x5000)
        assert not pap.record_outcome(pred, 0x6000)
        assert pap.record_outcome(None, 0x5000) is False
        assert pap.stats.loads_seen == 3
        assert pap.stats.predictions == 2
        assert pap.stats.correct == 1
        assert pap.stats.accuracy == 0.5

    def test_table1_entry_widths(self):
        layout = AptEntryLayout()
        assert layout.bits() == 67                      # ARMv8 (Table 4)
        assert AptEntryLayout(address_bits=32).bits() == 50   # ARMv7

    def test_storage_budget_matches_table4(self):
        pap = PapPredictor()
        assert pap.storage_bits() == 1024 * 67
        v7 = PapPredictor(PapConfig(address_bits=32))
        assert v7.storage_bits() == 1024 * 50

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            PapConfig(entries=1000)
        with pytest.raises(ValueError):
            PapConfig(allocation_policy=3)


class TestLoadPathHistory:
    def test_push_load_uses_bit2(self):
        h = LoadPathHistory(4)
        h.push_load(0x1004)     # bit 2 set
        h.push_load(0x1008)     # bit 2 clear
        assert h.value == 0b10

    def test_snapshot_restore(self):
        h = LoadPathHistory(8)
        h.push_load(0x1004)
        snap = h.snapshot()
        h.push_load(0x1004)
        h.restore(snap)
        assert h.value == snap

    def test_folding_in_range(self):
        h = LoadPathHistory(16)
        for pc in range(0x1000, 0x1100, 4):
            h.push_load(pc)
        assert 0 <= h.folded(10) < 1024
