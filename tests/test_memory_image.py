"""Tests for the committed memory image."""

import pytest
from hypothesis import given, strategies as st

from repro.memory import MemoryImage
from repro.memory.memory_image import _background


class TestBasics:
    def test_write_read_roundtrip_8_bytes(self):
        img = MemoryImage()
        img.write(0x1000, 8, 0xDEADBEEFCAFEF00D)
        assert img.read(0x1000, 8) == 0xDEADBEEFCAFEF00D

    def test_write_read_4_bytes(self):
        img = MemoryImage()
        img.write(0x1000, 4, 0x12345678)
        assert img.read(0x1000, 4) == 0x12345678

    def test_16_byte_values(self):
        img = MemoryImage()
        value = (0xAAAA << 64) | 0xBBBB
        img.write(0x2000, 16, value)
        assert img.read(0x2000, 16) == value

    def test_partial_overwrite(self):
        img = MemoryImage()
        img.write(0x1000, 8, (0x11111111 << 32) | 0x22222222)
        img.write(0x1000, 4, 0x33333333)
        assert img.read(0x1000, 8) == (0x11111111 << 32) | 0x33333333

    def test_adjacent_writes_do_not_interfere(self):
        img = MemoryImage()
        img.write(0x1000, 8, 1)
        img.write(0x1008, 8, 2)
        assert img.read(0x1000, 8) == 1
        assert img.read(0x1008, 8) == 2

    def test_len_counts_words(self):
        img = MemoryImage()
        img.write(0x1000, 8, 7)
        assert len(img) == 2


class TestValidation:
    def test_unaligned_write_rejected(self):
        with pytest.raises(ValueError, match="aligned"):
            MemoryImage().write(0x1001, 4, 1)

    def test_unaligned_read_rejected(self):
        with pytest.raises(ValueError, match="aligned"):
            MemoryImage().read(0x1002, 4)

    def test_non_multiple_size_rejected(self):
        with pytest.raises(ValueError, match="multiple of 4"):
            MemoryImage().write(0x1000, 3, 1)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError, match="multiple of 4"):
            MemoryImage().read(0x1000, 0)


class TestBackground:
    def test_deterministic_across_instances(self):
        a = MemoryImage().read(0x5000, 8)
        b = MemoryImage().read(0x5000, 8)
        assert a == b

    def test_different_addresses_mostly_differ(self):
        img = MemoryImage()
        values = {img.read(0x10000 + 8 * i, 8) for i in range(64)}
        assert len(values) > 16

    def test_background_is_zero_heavy(self):
        # Roughly a quarter of background words read as zero (real
        # process images are zero-heavy; Figure 2's value repeatability
        # depends on this).
        zeros = sum(1 for i in range(4000) if _background(i) == 0)
        assert 0.15 < zeros / 4000 < 0.40

    def test_is_written_tracks_explicit_writes(self):
        img = MemoryImage()
        assert not img.is_written(0x1000, 8)
        img.write(0x1000, 8, 5)
        assert img.is_written(0x1000, 8)
        assert not img.is_written(0x1008, 8)


class TestProperties:
    @given(
        addr=st.integers(min_value=0, max_value=1 << 40).map(lambda a: a * 4),
        size=st.sampled_from([4, 8, 16, 32]),
        data=st.data(),
    )
    def test_roundtrip_any_aligned_write(self, addr, size, data):
        value = data.draw(st.integers(min_value=0, max_value=(1 << (8 * size)) - 1))
        img = MemoryImage()
        img.write(addr, size, value)
        assert img.read(addr, size) == value

    @given(st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=255).map(lambda a: a * 8),
            st.integers(min_value=0, max_value=(1 << 64) - 1),
        ),
        min_size=1, max_size=40,
    ))
    def test_last_write_wins(self, writes):
        img = MemoryImage()
        expected = {}
        for addr, value in writes:
            img.write(addr, 8, value)
            expected[addr] = value
        for addr, value in expected.items():
            assert img.read(addr, 8) == value
