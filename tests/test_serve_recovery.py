"""Crash-survivability tests for :mod:`repro.serve`.

The farm's robustness claims are about *death*: a client that vanishes
mid-stream, a worker that hangs forever, a gateway SIGKILL'd mid-grid,
a ticket record torn by the crash.  Each test kills the corresponding
participant for real — raw sockets dropped without goodbye, subprocess
gateways killed with SIGKILL, records garbled on disk — and asserts the
survivors converge on the same exactly-once outcome an undisturbed run
would have produced.  The journal is the referee throughout:
``job_finished`` counts per key prove exactly-once, ``lease_reaped`` /
``gateway_recovered`` / ``ticket_record_corrupt`` events prove the
recovery machinery (not luck) did the work.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from collections import Counter
from pathlib import Path

import pytest

from repro.runtime import make_job, read_journal
from repro.serve import (
    ServeClient,
    ServeError,
    ServerOverloadedError,
    SweepServer,
    TicketStore,
    UnknownTicketError,
)
from repro.serve.protocol import (
    decode_message,
    encode_message,
    read_addr_file,
    read_addr_record,
    clear_addr_file,
    write_addr_file,
)
from repro.serve.tickets import TICKETS_DIRNAME

N = 1_500


def start_server(tmp_path, **kwargs):
    kwargs.setdefault("workers", 2)
    server = SweepServer(port=0, cache_dir=tmp_path / "cache", **kwargs)
    handle = server.start_in_thread()
    return server, handle


def farm_journal(tmp_path):
    return read_journal(tmp_path / "cache" / "serve.jsonl", strict=False)


def ok_finishes_per_key(events):
    return Counter(
        e["key"] for e in events
        if e["event"] == "job_finished" and e.get("status") == "ok"
    )


def submit_and_drop(host, port, schemes, workloads, tenant="t") -> str:
    """Raw-socket submit: read the ack, then drop the connection dead.

    Returns the ticket id.  This is the vanished client — no goodbye,
    no shutdown, just a closed socket while the grid executes.
    """
    sock = socket.create_connection((host, port))
    try:
        sock.sendall(encode_message({
            "op": "submit", "tenant": tenant, "schemes": schemes,
            "workloads": workloads, "n_instructions": N,
        }))
        with sock.makefile("rb") as reader:
            ack = decode_message(reader.readline())
    finally:
        sock.close()
    assert ack["type"] == "submitted", ack
    return ack["ticket"]


def wait_for(predicate, timeout=90.0, interval=0.05):
    deadline = time.time() + timeout
    while time.time() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise TimeoutError(f"condition not met within {timeout}s: {predicate}")


class TestClientDeath:
    def test_disconnect_keeps_grid_running_and_resume_reattaches(
        self, tmp_path
    ):
        server, handle = start_server(tmp_path)
        try:
            ticket = submit_and_drop(handle.host, handle.port,
                                     ["baseline", "dlvp"], ["gzip"])
            client = ServeClient(host=handle.host, port=handle.port)
            response = client.resume(ticket)
            assert response.complete
            assert response.ticket == ticket
            assert len(response.cells) == 2
        finally:
            handle.stop()
        events = farm_journal(tmp_path)
        # the orphaned grid executed exactly once per cell
        assert set(ok_finishes_per_key(events).values()) == {1}
        kinds = Counter(e["event"] for e in events)
        # resume either re-attached the live ticket or revived its record
        assert kinds["ticket_attached"] + kinds["ticket_revived"] >= 1

    def test_finished_ticket_replays_from_history(self, tmp_path):
        server, handle = start_server(tmp_path)
        try:
            client = ServeClient(host=handle.host, port=handle.port)
            first = client.submit(["dlvp"], ["gzip"], n_instructions=N)
            assert first.complete
            replay = client.resume(first.ticket)
            assert replay.complete
            assert all(c.resumed for c in replay.cells.values())
            assert (replay.result("dlvp", "gzip")
                    == first.result("dlvp", "gzip"))
        finally:
            handle.stop()
        # the replay executed nothing
        assert sum(ok_finishes_per_key(farm_journal(tmp_path)).values()) == 1

    def test_unknown_ticket_raises(self, tmp_path):
        server, handle = start_server(tmp_path)
        try:
            client = ServeClient(host=handle.host, port=handle.port)
            with pytest.raises(UnknownTicketError):
                client.resume("feedc0de")
        finally:
            handle.stop()

    def test_submit_reconnects_resume_by_ticket(self, tmp_path):
        """A flaky read path: every stream read times out mid-grid, the
        client reconnects with jittered backoff and resumes by ticket —
        and still converges on the complete, exactly-once response."""
        server, handle = start_server(tmp_path, workers=1,
                                      fault_spec="slow@*/*=0.4")
        try:
            client = ServeClient(host=handle.host, port=handle.port)
            response = client.submit(
                ["baseline", "dlvp"], ["gzip", "nat"], n_instructions=N,
                timeout=0.25, reconnects=60, backoff=0.05, max_backoff=0.3,
            )
            assert response.complete
            assert len(response.cells) == 4
        finally:
            handle.stop()
        assert set(ok_finishes_per_key(farm_journal(tmp_path)).values()) \
            == {1}


class TestWorkerDeath:
    def test_watchdog_reaps_hung_worker_and_grid_completes(self, tmp_path):
        server, handle = start_server(
            tmp_path, workers=2, fault_spec="hang@gzip/dlvp:1=30",
            lease_timeout=1.5, heartbeat=0.3, retries=1,
        )
        try:
            client = ServeClient(host=handle.host, port=handle.port)
            response = client.submit(
                ["baseline", "dlvp"], ["gzip", "nat"],
                n_instructions=N, timeout=120,
            )
            # the hang is reaped, retried (attempt 2 has no fault) and
            # the grid completes — a wedged worker never costs the slot
            assert response.complete
        finally:
            handle.stop()
        events = farm_journal(tmp_path)
        reaps = [e for e in events if e["event"] == "lease_reaped"]
        assert len(reaps) >= 1
        assert reaps[0]["workload"] == "gzip" and reaps[0]["scheme"] == "dlvp"
        assert reaps[0]["silent_s"] >= reaps[0]["bound_s"]
        assert any(e["event"] == "worker_heartbeat" for e in events), \
            "lease must prove liveness while the attempt runs"
        assert set(ok_finishes_per_key(events).values()) == {1}


class TestShutdownRace:
    def test_drain_with_result_in_flight_settles_each_cell_once(
        self, tmp_path
    ):
        """Regression: draining while a lease is mid-settle must not
        double-settle the running cell (queued cells interrupt, the
        running one finishes through its own settle path)."""
        server, handle = start_server(
            tmp_path, workers=1, fault_spec="slow@*/*=0.5", grace=15.0,
        )
        box = {}

        def run():
            client = ServeClient(host=handle.host, port=handle.port)
            try:
                box["response"] = client.submit(
                    ["baseline"], ["gzip", "nat", "mcf"],
                    n_instructions=N, timeout=60,
                )
            except ServeError as exc:
                box["error"] = exc

        thread = threading.Thread(target=run)
        thread.start()
        try:
            journal = tmp_path / "cache" / "serve.jsonl"
            wait_for(lambda: journal.exists()
                     and '"job_started"' in journal.read_text())
        finally:
            handle.stop()       # drain mid-execution
        thread.join(timeout=60)
        events = farm_journal(tmp_path)
        finishes = Counter(
            e["key"] for e in events if e["event"] == "job_finished"
        )
        assert finishes and set(finishes.values()) == {1}, \
            f"double-settled cells: {finishes}"


class TestGatewayDeath:
    def test_sigkill_mid_grid_then_restart_recovers_and_resume_completes(
        self, tmp_path
    ):
        """The chaos acceptance path, end to end over real processes:
        SIGKILL the gateway mid-grid, restart it on the same cache
        root, ``repro serve resume <ticket>`` exits 0 with every cell
        settled exactly once."""
        cache = tmp_path / "cache"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent
                                / "src")
        gateway_cmd = [
            sys.executable, "-m", "repro", "serve", "start", "--port", "0",
            "--cache-dir", str(cache), "--workers", "1",
        ]
        journal = cache / "serve.jsonl"

        def ok_finish_count():
            if not journal.exists():
                return 0
            return sum(ok_finishes_per_key(
                read_journal(journal, strict=False)).values())

        proc = subprocess.Popen(gateway_cmd + ["--fault", "slow@*/*=0.4"],
                                env=env, stderr=subprocess.DEVNULL)
        try:
            addr = wait_for(lambda: read_addr_file(cache), timeout=60)
            ticket = submit_and_drop(addr[0], addr[1], ["baseline", "dlvp"],
                                     ["gzip", "nat", "mcf"])
            wait_for(lambda: ok_finish_count() >= 2)
        finally:
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
        settled_before_kill = set(ok_finishes_per_key(
            read_journal(journal, strict=False)))
        assert read_addr_file(cache) is None, \
            "a dead gateway's advertisement must not survive discovery"

        proc2 = subprocess.Popen(gateway_cmd, env=env,
                                 stderr=subprocess.DEVNULL)
        try:
            wait_for(lambda: read_addr_file(cache), timeout=60)
            resumed = subprocess.run(
                [sys.executable, "-m", "repro", "serve", "resume", ticket,
                 "--cache-dir", str(cache), "--quiet"],
                env=env, capture_output=True, text=True, timeout=240,
            )
            assert resumed.returncode == 0, resumed.stderr
        finally:
            subprocess.run(
                [sys.executable, "-m", "repro", "serve", "shutdown",
                 "--cache-dir", str(cache)],
                env=env, capture_output=True, timeout=60,
            )
            proc2.wait(timeout=60)

        events = read_journal(journal, strict=False)
        kinds = Counter(e["event"] for e in events)
        assert kinds["gateway_recovered"] == 1
        assert kinds["job_requeued"] >= 1
        # exactly-once across BOTH gateway lifetimes, per cell
        assert set(ok_finishes_per_key(events).values()) == {1}
        assert len(ok_finishes_per_key(events)) == 6
        # cells settled before the kill were never re-executed
        starts = Counter(e["key"] for e in events
                         if e["event"] == "job_started")
        for key in settled_before_kill:
            assert starts[key] == 1, \
                f"pre-kill cell {key[:12]} re-executed after recovery"


class TestRecoveryEdges:
    def test_torn_ticket_record_is_skipped_and_reported(self, tmp_path):
        tickets_dir = tmp_path / "cache" / TICKETS_DIRNAME
        tickets_dir.mkdir(parents=True)
        (tickets_dir / "deadbeef.json").write_text('{"ticket": "deadbe')
        server, handle = start_server(tmp_path)
        try:
            client = ServeClient(host=handle.host, port=handle.port)
            with pytest.raises(ServeError, match="torn|corrupt"):
                client.resume("deadbeef")
            # the farm still takes work
            assert client.submit(["dlvp"], ["gzip"],
                                 n_instructions=N).complete
        finally:
            handle.stop()
        events = farm_journal(tmp_path)
        assert any(e["event"] == "ticket_record_corrupt" for e in events), \
            "startup recovery must report (not trust, not crash on) " \
            "the torn record"

    def test_journal_settlements_replay_without_cache(self, tmp_path):
        """A finished ticket resumes from journal payloads alone: the
        second gateway runs cache-less, so every replayed cell must
        come out of ``job_finished`` result payloads."""
        server, handle = start_server(tmp_path)
        try:
            client = ServeClient(host=handle.host, port=handle.port)
            first = client.submit(["baseline", "dlvp"], ["gzip"],
                                  n_instructions=N)
            ticket = first.ticket
            assert first.complete
        finally:
            handle.stop()
        server2, handle2 = start_server(tmp_path, use_cache=False)
        try:
            client = ServeClient(host=handle2.host, port=handle2.port)
            replay = client.resume(ticket)
            assert replay.complete
            assert all(c.resumed for c in replay.cells.values())
            assert (replay.result("dlvp", "gzip")
                    == first.result("dlvp", "gzip"))
        finally:
            handle2.stop()
        # nothing executed in the second gateway's lifetime
        assert sum(ok_finishes_per_key(farm_journal(tmp_path)).values()) == 2

    def test_recovery_bypasses_tenant_queue_bound(self, tmp_path):
        """Reviving previously-admitted work is not new load: an
        unfinished record wider than the tenant bound still requeues
        in full on startup."""
        cache = tmp_path / "cache"
        jobs = [make_job(w, N, s)
                for s in ("baseline", "dlvp") for w in ("gzip", "nat")]
        store = TicketStore(cache / TICKETS_DIRNAME)
        store.save("cafe0001", tenant="t", watch=False,
                   cells=[job.identity() for job in jobs])
        server, handle = start_server(tmp_path,
                                      max_pending_per_tenant=1)
        try:
            client = ServeClient(host=handle.host, port=handle.port)
            response = client.resume("cafe0001", timeout=120)
            assert response.complete
            assert len(response.cells) == 4
        finally:
            handle.stop()
        events = farm_journal(tmp_path)
        kinds = Counter(e["event"] for e in events)
        assert kinds["gateway_recovered"] == 1
        requeued = [e for e in events if e["event"] == "job_requeued"]
        assert len(requeued) == 4, \
            "all cells requeue despite max_pending_per_tenant=1"
        assert set(ok_finishes_per_key(events).values()) == {1}


class TestAdmissionControl:
    def test_overload_sheds_with_retry_after_and_journal_trail(
        self, tmp_path
    ):
        server, handle = start_server(
            tmp_path, workers=1, fault_spec="slow@*/*=0.5",
            max_pending_total=3,
        )
        try:
            client = ServeClient(host=handle.host, port=handle.port)
            box = {}
            thread = threading.Thread(target=lambda: box.update(
                response=client.submit(["baseline"], ["gzip", "nat", "mcf"],
                                       n_instructions=N, timeout=60)))
            thread.start()
            try:
                journal = tmp_path / "cache" / "serve.jsonl"
                wait_for(lambda: journal.exists()
                         and '"grid_submitted"' in journal.read_text())
                with pytest.raises(ServerOverloadedError) as excinfo:
                    client.submit(["baseline", "dlvp"], ["vpr", "gcc"],
                                  n_instructions=N)
                assert excinfo.value.retry_after >= 1.0
            finally:
                thread.join(timeout=120)
            assert box["response"].complete
            # the shed grid gets in once the backlog drains
            retry = client.submit(["dlvp"], ["gzip"], n_instructions=N,
                                  reconnects=3, timeout=60)
            assert retry.complete
        finally:
            handle.stop()
        events = farm_journal(tmp_path)
        shed = [e for e in events if e["event"] == "submit_rejected"]
        assert shed and shed[0]["reason"] == "overloaded"
        assert shed[0]["retry_after"] >= 1.0


class TestDiscoveryStaleness:
    def test_dead_pid_advertisement_is_deleted_on_read(self, tmp_path):
        write_addr_file(tmp_path, "127.0.0.1", 45678)
        record = read_addr_record(tmp_path)
        record["pid"] = 2 ** 22 + 77777       # provably not alive
        path = tmp_path / "serve.addr"
        path.write_text(json.dumps(record) + "\n")
        assert read_addr_file(tmp_path) is None
        assert not path.exists(), "stale advertisement must be deleted"

    def test_clear_is_pid_guarded(self, tmp_path):
        write_addr_file(tmp_path, "127.0.0.1", 45678)   # our pid
        clear_addr_file(tmp_path, pid=os.getpid() + 1)  # someone else
        assert read_addr_file(tmp_path) is not None, \
            "another process must not withdraw our advertisement"
        clear_addr_file(tmp_path, pid=os.getpid())
        assert read_addr_record(tmp_path) is None

    def test_dead_server_degrades_to_local_fallback(self, tmp_path):
        """A crashed server's stale advertisement must route clients to
        the in-process fallback, not a hang or an error."""
        from repro.serve import submit_or_local

        write_addr_file(tmp_path, "127.0.0.1", 1)       # nothing listens
        record = read_addr_record(tmp_path)
        record["pid"] = 2 ** 22 + 77778
        (tmp_path / "serve.addr").write_text(json.dumps(record) + "\n")
        response = submit_or_local(["dlvp"], ["gzip"], n_instructions=N,
                                   cache_dir=tmp_path)
        assert response.mode == "local"
        assert response.complete
