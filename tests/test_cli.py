"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "not-a-workload"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "gzip"])
        assert args.scheme == "dlvp"
        assert args.recovery == "flush"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "perlbmk" in out and "78 workloads" in out

    def test_run(self, capsys):
        assert main(["run", "aifirf", "--instructions", "2000"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "aifirf" in out

    def test_run_unknown_scheme(self, capsys):
        assert main(["run", "gzip", "--scheme", "bogus",
                     "--instructions", "1000"]) == 2

    def test_run_with_replay(self, capsys):
        assert main(["run", "gzip", "--recovery", "oracle_replay",
                     "--instructions", "2000"]) == 0

    def test_run_dvtage(self, capsys):
        assert main(["run", "nat", "--scheme", "dvtage",
                     "--instructions", "2000"]) == 0

    def test_profile(self, capsys):
        assert main(["profile", "perlbmk", "--instructions", "3000"]) == 0
        out = capsys.readouterr().out
        assert "conflicting loads" in out

    def test_figure_table(self, capsys):
        assert main(["figure", "table1"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_figure_unknown(self, capsys):
        assert main(["figure", "99"]) == 2

    def test_figure_with_subset(self, capsys):
        assert main(["figure", "1", "--instructions", "2000",
                     "--workloads", "gzip", "nat"]) == 0
        assert "Figure 1" in capsys.readouterr().out
