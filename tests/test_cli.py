"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Keep CLI invocations from touching the real ~/.cache/repro."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "not-a-workload"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "gzip"])
        assert args.scheme == "dlvp"
        assert args.recovery == "flush"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "perlbmk" in out and "80 workloads (78 paper" in out

    def test_run(self, capsys):
        assert main(["run", "aifirf", "--instructions", "2000"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "aifirf" in out

    def test_run_unknown_scheme(self, capsys):
        assert main(["run", "gzip", "--scheme", "bogus",
                     "--instructions", "1000"]) == 2

    def test_run_with_replay(self, capsys):
        assert main(["run", "gzip", "--recovery", "oracle_replay",
                     "--instructions", "2000"]) == 0

    def test_run_dvtage(self, capsys):
        assert main(["run", "nat", "--scheme", "dvtage",
                     "--instructions", "2000"]) == 0

    def test_profile(self, capsys):
        assert main(["profile", "perlbmk", "--instructions", "3000"]) == 0
        out = capsys.readouterr().out
        assert "conflicting loads" in out

    def test_figure_table(self, capsys):
        assert main(["figure", "table1"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_figure_unknown(self, capsys):
        assert main(["figure", "99"]) == 2

    def test_figure_with_subset(self, capsys):
        assert main(["figure", "1", "--instructions", "2000",
                     "--workloads", "gzip", "nat"]) == 0
        assert "Figure 1" in capsys.readouterr().out


class TestRuntimeFlags:
    def test_run_with_jobs_and_no_cache(self, capsys):
        assert main(["run", "gzip", "--instructions", "1500",
                     "--jobs", "2", "--no-cache"]) == 0
        out, err = capsys.readouterr()
        assert "speedup" in out and "gzip" in out
        assert "2 jobs" in err and "0 cache hits" in err

    def test_figure_parallel_matches_serial(self, capsys, tmp_path):
        args = ["figure", "6", "--instructions", "1500",
                "--workloads", "gzip", "nat"]
        assert main(args + ["--jobs", "2",
                            "--cache-dir", str(tmp_path / "a")]) == 0
        parallel_out = capsys.readouterr().out
        assert main(args + ["--jobs", "1", "--no-cache"]) == 0
        serial_out = capsys.readouterr().out
        assert parallel_out == serial_out

    def test_figure_warm_cache_executes_nothing(self, capsys, tmp_path):
        args = ["figure", "6", "--instructions", "1500",
                "--workloads", "gzip", "nat",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        _, err = capsys.readouterr()
        assert "0 executed" in err
        from repro.runtime import read_journal
        events = read_journal(tmp_path / "cache" / "last-run.jsonl")
        # journals append (never truncate); isolate the warm run by run_id
        warm_id = [e for e in events if e["event"] == "run_started"][-1]["run_id"]
        warm = [e for e in events if e["run_id"] == warm_id]
        assert len(warm) < len(events)  # cold run's events retained too
        assert all(e["event"] != "job_started" for e in warm)
        assert any(e["event"] == "cache_hit" for e in warm)


class TestSweep:
    def test_sweep_smoke(self, capsys):
        assert main(["sweep", "--schemes", "dlvp", "vtage",
                     "--workloads", "gzip", "nat",
                     "--instructions", "1500", "--jobs", "2",
                     "--no-cache"]) == 0
        out, err = capsys.readouterr()
        assert "dlvp" in out and "vtage" in out
        assert "gzip" in out and "nat" in out
        assert "(geo mean)" in out
        assert "6 jobs" in err  # 2 schemes x 2 workloads + 2 baselines

    def test_sweep_cache_round_trip(self, capsys, tmp_path):
        args = ["sweep", "--schemes", "dlvp", "--workloads", "gzip",
                "--instructions", "1500",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(args) == 0
        cold = capsys.readouterr()
        assert main(args) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out
        assert "2 cache hits" in warm.err

    def test_sweep_unknown_scheme(self, capsys):
        assert main(["sweep", "--schemes", "not-a-scheme",
                     "--workloads", "gzip", "--no-cache"]) == 2

    def test_sweep_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "--schemes", "dlvp", "--workloads", "nope"]
            )
