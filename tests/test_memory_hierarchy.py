"""Tests for the TLB, prefetcher and composed memory hierarchy."""

from repro.memory import (
    HierarchyConfig,
    MemoryHierarchy,
    StridePrefetcher,
    Tlb,
    TlbConfig,
)


class TestTlb:
    def test_miss_then_hit(self):
        tlb = Tlb()
        hit, penalty = tlb.access(0x1000)
        assert not hit and penalty == TlbConfig().miss_penalty
        hit, penalty = tlb.access(0x1000)
        assert hit and penalty == 0

    def test_same_page_hits(self):
        tlb = Tlb()
        tlb.access(0x1000)
        hit, _ = tlb.access(0x1FFC)
        assert hit

    def test_different_page_misses(self):
        tlb = Tlb()
        tlb.access(0x1000)
        hit, _ = tlb.access(0x2000)
        assert not hit

    def test_probe_does_not_allocate(self):
        tlb = Tlb()
        assert not tlb.probe(0x1000)
        hit, _ = tlb.access(0x1000)
        assert not hit


class TestStridePrefetcher:
    def test_untrained_issues_nothing(self):
        pf = StridePrefetcher(threshold=2)
        assert list(pf.observe(0x10, 0x1000)) == []
        assert list(pf.observe(0x10, 0x1040)) == []

    def test_trains_on_repeated_stride(self):
        pf = StridePrefetcher(threshold=2, degree=2)
        for i in range(4):
            out = pf.observe(0x10, 0x1000 + i * 64)
        assert out == [0x1000 + 4 * 64, 0x1000 + 5 * 64]

    def test_stride_change_resets(self):
        pf = StridePrefetcher(threshold=2)
        for i in range(4):
            pf.observe(0x10, 0x1000 + i * 64)
        assert list(pf.observe(0x10, 0x9000)) == []
        assert list(pf.observe(0x10, 0x9100)) == []

    def test_zero_stride_never_prefetches(self):
        pf = StridePrefetcher(threshold=1)
        for _ in range(10):
            out = pf.observe(0x10, 0x1000)
        assert list(out) == []

    def test_distinct_pcs_tracked_separately(self):
        pf = StridePrefetcher(threshold=2)
        for i in range(4):
            pf.observe(0x10, 0x1000 + i * 64)
            out = pf.observe(0x14, 0x8000 + i * 128)
        assert out and out[0] == 0x8000 + 4 * 128


class TestHierarchy:
    def test_l1_hit_latency(self):
        h = MemoryHierarchy()
        h.access(0x10, 0x1000)
        result = h.access(0x10, 0x1000)
        assert result.l1_hit
        assert result.latency == h.config.l1d.latency

    def test_cold_miss_pays_full_path(self):
        h = MemoryHierarchy(HierarchyConfig(prefetch=False))
        result = h.access(0x10, 0x100000)
        cfg = h.config
        expected = (cfg.l1d.latency + cfg.l2.latency + cfg.l3.latency
                    + cfg.memory_latency + cfg.tlb.miss_penalty)
        assert result.latency == expected

    def test_fill_is_inclusive(self):
        h = MemoryHierarchy(HierarchyConfig(prefetch=False))
        h.access(0x10, 0x100000)
        assert h.l1d.lookup(0x100000, update_lru=False)[0]
        assert h.l2.lookup(0x100000, update_lru=False)[0]
        assert h.l3.lookup(0x100000, update_lru=False)[0]

    def test_l2_hit_cheaper_than_memory(self):
        h = MemoryHierarchy(HierarchyConfig(prefetch=False))
        h.access(0x10, 0x100000)
        # Evict from tiny... L1 is big; instead access a second block in
        # the same L2 block (L2 block 128B spans two L1 blocks).
        result = h.access(0x10, 0x100040)
        assert not result.l1_hit
        assert result.latency <= h.config.l1d.latency + h.config.l2.latency

    def test_probe_l1_nonallocating_but_translates(self):
        h = MemoryHierarchy()
        hit, way = h.probe_l1(0x300000)
        assert not hit and way is None
        assert not h.l1d.lookup(0x300000, update_lru=False)[0]
        # The probe went through the TLB (Figure 9's second-order effect).
        assert h.tlb.probe(0x300000)

    def test_prefetch_fill_brings_into_l1(self):
        h = MemoryHierarchy()
        h.prefetch_fill(0x400000)
        hit, _ = h.probe_l1(0x400000)
        assert hit
        assert h.prefetch_fills == 1

    def test_prefetch_fill_noop_when_resident(self):
        h = MemoryHierarchy()
        h.access(0x10, 0x1000)
        h.prefetch_fill(0x1000)
        assert h.prefetch_fills == 0

    def test_stride_stream_warms_cache(self):
        h = MemoryHierarchy()
        latencies = [h.access(0x10, 0x500000 + i * 64).latency for i in range(32)]
        # The stride prefetcher should convert later misses into hits.
        assert sum(1 for lat in latencies[16:] if lat == h.config.l1d.latency) >= 8

    def test_way_reported_matches_l1(self):
        h = MemoryHierarchy()
        result = h.access(0x10, 0x1000)
        assert h.l1d.lookup(0x1000, update_lru=False) == (True, result.way)
