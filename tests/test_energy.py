"""Tests for the SRAM/area/energy models (Table 2, Figures 6c/6d)."""

import pytest

from repro.energy import (
    EnergyWeights,
    SramModel,
    SramPort,
    core_energy,
    normalized_core_energy,
    predictor_cost_table,
    pvt_design_table,
)
from repro.pipeline import DlvpScheme, simulate
from repro.workloads import build_workload


class TestSramModel:
    def test_more_bits_more_area(self):
        small = SramModel(1024, SramPort(1, 1))
        big = SramModel(65536, SramPort(1, 1))
        assert big.area() > small.area()

    def test_more_ports_more_area(self):
        narrow = SramModel(4096, SramPort(1, 1))
        wide = SramModel(4096, SramPort(8, 8))
        assert wide.area() > narrow.area()

    def test_write_energy_exceeds_read(self):
        m = SramModel(4096, SramPort(2, 2))
        assert m.write_energy() > m.read_energy()

    def test_leakage_scales_with_area(self):
        small = SramModel(1024, SramPort(1, 1))
        big = SramModel(65536, SramPort(1, 1))
        assert big.leakage() > small.leakage()

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            SramModel(0, SramPort(1, 1))
        with pytest.raises(ValueError):
            SramModel(1024, SramPort(0, 0))


class TestTable2:
    def test_orderings_match_paper(self):
        t = pvt_design_table()
        # Area: PVT << d1 < d3 < d2.
        assert t["pvt"].area < 0.2
        assert 1.0 == t["design1"].area
        assert t["design1"].area < t["design3"].area < t["design2"].area
        # Read energy: design3 < design1 <= design2.
        assert t["design3"].read_energy < 1.0 <= t["design2"].read_energy
        # Write energy: design1 < design3 < design2.
        assert 1.0 < t["design3"].write_energy < t["design2"].write_energy

    def test_rough_magnitudes(self):
        t = pvt_design_table()
        assert t["design2"].area == pytest.approx(1.16, abs=0.08)
        assert t["design3"].area == pytest.approx(1.06, abs=0.06)
        assert t["design3"].read_energy == pytest.approx(0.80, abs=0.10)
        assert t["design3"].write_energy == pytest.approx(1.07, abs=0.10)

    def test_predicted_fraction_scaling(self):
        none = pvt_design_table(predicted_fraction=0.0)
        lots = pvt_design_table(predicted_fraction=0.6)
        assert none["design3"].read_energy == pytest.approx(1.0)
        assert lots["design3"].read_energy < none["design3"].read_energy

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            pvt_design_table(predicted_fraction=1.5)


class TestFig6d:
    def test_normalized_to_pap(self):
        t = predictor_cost_table()
        assert t["pap"].area == pytest.approx(1.0)
        assert t["pap"].read_energy == pytest.approx(1.0)
        assert t["pap"].write_energy == pytest.approx(1.0)

    def test_cap_larger_than_pap(self):
        t = predictor_cost_table()
        assert t["cap"].area > 1.0                  # 95k vs 67k bits
        assert t["cap"].read_energy > 1.0           # two serial tables
        assert t["cap"].storage_bits > t["pap"].storage_bits

    def test_vtage_reads_three_tables(self):
        t = predictor_cost_table()
        assert t["vtage"].read_energy > 1.0


class TestCoreEnergy:
    def test_dlvp_energy_near_baseline(self):
        trace = build_workload("vortex", 6000)
        base = simulate(trace)
        dlvp = simulate(trace, scheme=DlvpScheme())
        ratio = normalized_core_energy(dlvp, base)
        assert 0.85 < ratio < 1.15      # paper: "without increasing core energy"

    def test_energy_positive(self):
        trace = build_workload("gzip", 2000)
        assert core_energy(simulate(trace)) > 0

    def test_way_predicted_probes_populated_and_discounted(self):
        # The way-predicted probe split: simulate() must populate
        # l1d_probes_way_predicted from DLVP stats, and core_energy must
        # charge those probes the discounted weight — zeroing the field
        # (the old, buggy accounting) must cost strictly more.
        import dataclasses

        trace = build_workload("gzip", 6000)
        result = simulate(trace, scheme=DlvpScheme())
        e = result.energy
        assert 0 < e.l1d_probes_way_predicted <= e.l1d_probes
        flat = dataclasses.replace(e, l1d_probes_way_predicted=0)
        flat_result = dataclasses.replace(result, energy=flat)
        w = EnergyWeights()
        delta = core_energy(flat_result, w) - core_energy(result, w)
        expected = ((w.l1_probe - w.l1_probe_way_predicted)
                    * e.l1d_probes_way_predicted)
        assert delta == pytest.approx(expected)
        assert delta > 0

    def test_normalization_requires_same_trace(self):
        a = simulate(build_workload("gzip", 1000))
        b = simulate(build_workload("parser", 1000))
        with pytest.raises(ValueError):
            normalized_core_energy(a, b)

    def test_static_share_reasonable(self):
        trace = build_workload("gzip", 3000)
        r = simulate(trace)
        w = EnergyWeights()
        static = w.static_per_cycle * r.cycles
        total = core_energy(r, w)
        assert 0.15 < static / total < 0.75
