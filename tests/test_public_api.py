"""Public API surface tests."""

import importlib

import repro


class TestApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_snippet(self):
        from repro import build_workload, simulate, DlvpScheme
        trace = build_workload("perlbmk", n_instructions=2000)
        baseline = simulate(trace)
        dlvp = simulate(trace, scheme=DlvpScheme())
        assert isinstance(dlvp.speedup_over(baseline), float)

    def test_subpackages_importable(self):
        for mod in ("repro.isa", "repro.trace", "repro.workloads",
                    "repro.memory", "repro.branch", "repro.mdp",
                    "repro.predictors", "repro.core", "repro.pipeline",
                    "repro.energy", "repro.experiments"):
            importlib.import_module(mod)

    def test_experiment_modules_importable(self):
        for mod in ("fig1_conflicts", "fig2_repeatability",
                    "fig4_address_prediction", "fig5_prefetch",
                    "fig6_value_prediction", "fig7_vtage_flavors",
                    "fig8_tournament", "fig9_selected", "fig10_recovery",
                    "tables", "runner"):
            importlib.import_module(f"repro.experiments.{mod}")
