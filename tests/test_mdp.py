"""Tests for the store-sets memory dependence predictor."""

from repro.mdp import StoreSetsConfig, StoreSetsPredictor


class TestStoreSets:
    def test_no_prediction_before_violation(self):
        mdp = StoreSetsPredictor()
        assert mdp.load_dependence(0x1000) is None

    def test_violation_creates_dependence(self):
        mdp = StoreSetsPredictor()
        mdp.report_violation(load_pc=0x1000, store_pc=0x2000)
        mdp.store_fetched(0x2000, seq=5)
        assert mdp.load_dependence(0x1000) == 5

    def test_store_executed_clears(self):
        mdp = StoreSetsPredictor()
        mdp.report_violation(0x1000, 0x2000)
        mdp.store_fetched(0x2000, seq=5)
        mdp.store_executed(0x2000)
        assert mdp.load_dependence(0x1000) is None

    def test_latest_store_wins(self):
        mdp = StoreSetsPredictor()
        mdp.report_violation(0x1000, 0x2000)
        mdp.store_fetched(0x2000, seq=5)
        mdp.store_fetched(0x2000, seq=9)
        assert mdp.load_dependence(0x1000) == 9

    def test_merging_sets(self):
        mdp = StoreSetsPredictor()
        mdp.report_violation(0x1000, 0x2000)
        mdp.report_violation(0x1000, 0x3000)    # merge 0x3000 into the set
        mdp.store_fetched(0x3000, seq=7)
        assert mdp.load_dependence(0x1000) == 7

    def test_merge_existing_sets_picks_smaller_id(self):
        mdp = StoreSetsPredictor()
        mdp.report_violation(0x1000, 0x2000)      # set 0
        mdp.report_violation(0x3000, 0x4000)      # set 1
        mdp.report_violation(0x1000, 0x4000)      # merge
        mdp.store_fetched(0x4000, seq=3)
        assert mdp.load_dependence(0x1000) == 3

    def test_periodic_clear(self):
        mdp = StoreSetsPredictor(StoreSetsConfig(clear_interval=4))
        mdp.report_violation(0x1000, 0x2000)
        for i in range(6):
            mdp.store_fetched(0x2000, seq=i)
        # After the clear the SSIT is empty again.
        assert mdp.load_dependence(0x1000) is None

    def test_violation_counter(self):
        mdp = StoreSetsPredictor()
        mdp.report_violation(0x1000, 0x2000)
        mdp.report_violation(0x1000, 0x2000)
        assert mdp.violations == 2

    def test_unrelated_load_unaffected(self):
        mdp = StoreSetsPredictor()
        mdp.report_violation(0x1000, 0x2000)
        mdp.store_fetched(0x2000, seq=5)
        assert mdp.load_dependence(0x5550) is None
