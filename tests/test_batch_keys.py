"""Batched predictor-key precomputation (repro.pipeline.batch).

Two contracts guard the numpy fast path:

* **Fallback equivalence** — with numpy forced off (``batch.np = None``)
  the columnar engine must still reproduce the committed goldens bit
  for bit: the batch layer is an optional accelerator, never a
  semantic dependency.
* **Key equivalence** — the vectorized APT and TAGE key pipelines must
  emit exactly the keys the live incremental folded registers would,
  over random streams and across chunk-carry boundaries (including the
  >64-bit TAGE history windows split into lo/hi columns).
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from repro.isa import Instruction, OpClass
from repro.isa.fetch import FETCH_GROUP_BYTES
from repro.pipeline import batch
from repro.pipeline.core_model import simulate
from repro.runtime.registry import get_scheme
from repro.trace import ColumnarTrace
from repro.workloads import build_workload

GOLDEN_PATH = Path(__file__).parent / "golden_simresults.json"

numpy_required = pytest.mark.skipif(
    not batch.numpy_available(), reason="numpy not importable"
)


# ---------------------------------------------------------------------------
# no-numpy fallback reproduces the goldens
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("scheme_id", ["dlvp", "tournament"])
def test_no_numpy_columnar_matches_goldens(monkeypatch, scheme_id):
    """Golden smoke with the batch layer disabled at the module gate."""
    monkeypatch.setattr(batch, "np", None)
    goldens = json.loads(GOLDEN_PATH.read_text())
    trace = ColumnarTrace.from_trace(build_workload("mcf", 3_000))
    result = simulate(trace, get_scheme(scheme_id).build()).to_dict()
    assert result == goldens["cells"][f"mcf/{scheme_id}"]


# ---------------------------------------------------------------------------
# PapKeyBatch == sequential compute_key over the live load-path folds
# ---------------------------------------------------------------------------


@numpy_required
def test_pap_key_batch_matches_sequential():
    from repro.predictors.pap import PapPredictor

    rng = random.Random(0x5EED)
    pcs = [rng.randrange(1 << 48) * 4 for _ in range(500)]
    trace = ColumnarTrace("rand-loads", (
        Instruction(pc=pc, op=OpClass.LOAD, dests=(1,), values=(0,),
                    mem_addr=pc, mem_size=4)
        for pc in pcs
    ))
    predictor = PapPredictor()
    kb = batch.PapKeyBatch(
        trace,
        load_op=int(OpClass.LOAD),
        history_bits=predictor.config.history_bits,
        index_bits=predictor._index_bits,
        tag_bits=predictor.config.tag_bits,
        tag_shift=predictor._tag_shift,
        fetch_group_bytes=FETCH_GROUP_BYTES,
        chunk_loads=37,       # force many chunks and history carry
    )
    assert kb.loads == len(pcs)
    got: list[tuple[int, int, int, int]] = []
    while len(got) < len(pcs):
        start, idx0, tag0, idx1, tag1 = kb.next_chunk()
        assert start == len(got)
        got.extend(zip(idx0, tag0, idx1, tag1))
    fga_mask = ~(FETCH_GROUP_BYTES - 1)
    for pc, (i0, t0, i1, t1) in zip(pcs, got):
        fga = pc & fga_mask
        # the scheme keys FGA | (slot << 2) *before* pushing this load
        assert (i0, t0) == predictor.compute_key(fga)
        assert (i1, t1) == predictor.compute_key(fga | 4)
        predictor.history.push_load(pc)
    with pytest.raises(RuntimeError):
        kb.next_chunk()


# ---------------------------------------------------------------------------
# TageKeyBatch == sequential Tage._keys over the live global-history folds
# ---------------------------------------------------------------------------


@numpy_required
def test_tage_key_batch_matches_sequential():
    from repro.branch.tage import Tage

    rng = random.Random(0x7A6E)
    insts = []
    for _ in range(800):
        pc = rng.randrange(1 << 30) * 4
        r = rng.random()
        if r < 0.5:
            insts.append(Instruction(pc=pc, op=OpClass.BRANCH,
                                     taken=rng.random() < 0.5))
        elif r < 0.75:
            insts.append(Instruction(pc=pc, op=OpClass.CALL, target=64))
        else:
            insts.append(Instruction(pc=pc, op=OpClass.ALU))
    trace = ColumnarTrace("rand-branches", insts)

    tage = Tage()
    kb = batch.tage_key_batch(trace, tage)
    assert kb is not None
    kb._chunk = 50            # cross chunk carries incl. the hi window
    got: list = []
    while len(got) < kb.branches:
        start, keys = kb.next_chunk()
        assert start == len(got)
        got.extend(keys)      # call-only chunks contribute nothing

    j = 0
    for inst in insts:
        if inst.op is OpClass.BRANCH:
            assert list(got[j]) == tage._keys(inst.pc), f"branch {j}"
            tage.history.push(1 if inst.taken else 0)
            j += 1
        elif inst.op is OpClass.CALL:
            tage.history.push(1)
    assert j == kb.branches == len(got)
    with pytest.raises(RuntimeError):
        kb.next_chunk()


@numpy_required
def test_tage_key_batch_builder_guards():
    """tage_key_batch declines predictors it cannot serve exactly."""
    from repro.branch.tage import Tage

    trace = ColumnarTrace("empty")
    warm = Tage()
    warm.history.push(1)
    assert batch.tage_key_batch(trace, warm) is None     # non-zero history
    trained = Tage()
    trained.update(0x40, True)
    assert batch.tage_key_batch(trace, trained) is None  # already predicting
    assert batch.tage_key_batch(trace, Tage()) is not None
