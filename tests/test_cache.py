"""Tests for the set-associative cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory import Cache, CacheConfig


def small_cache(assoc=2, sets=4, block=64):
    return Cache(CacheConfig(
        name="t", size_bytes=assoc * sets * block, associativity=assoc,
        block_bytes=block, latency=1,
    ))


class TestConfigValidation:
    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ValueError, match="power of two"):
            CacheConfig(name="x", size_bytes=3 * 64 * 2, associativity=2,
                        block_bytes=64, latency=1)

    def test_indivisible_geometry_rejected(self):
        with pytest.raises(ValueError, match="not divisible"):
            CacheConfig(name="x", size_bytes=1000, associativity=3,
                        block_bytes=64, latency=1)

    def test_num_sets(self):
        cfg = CacheConfig(name="x", size_bytes=64 * 1024, associativity=4,
                          block_bytes=64, latency=2)
        assert cfg.num_sets == 256


class TestAccessBehaviour:
    def test_first_access_misses(self):
        c = small_cache()
        hit, way = c.access(0x1000)
        assert not hit
        assert c.stats.misses == 1

    def test_second_access_hits_same_way(self):
        c = small_cache()
        _, way1 = c.access(0x1000)
        hit, way2 = c.access(0x1000)
        assert hit
        assert way1 == way2

    def test_same_block_different_offset_hits(self):
        c = small_cache(block=64)
        c.access(0x1000)
        hit, _ = c.access(0x1030)
        assert hit

    def test_lru_eviction_order(self):
        c = small_cache(assoc=2, sets=1, block=64)
        c.access(0x000)           # A
        c.access(0x040)           # B
        c.access(0x000)           # touch A -> B is LRU
        c.access(0x080)           # C evicts B
        assert c.lookup(0x000, update_lru=False)[0]
        assert not c.lookup(0x040, update_lru=False)[0]
        assert c.lookup(0x080, update_lru=False)[0]

    def test_way_stable_until_eviction(self):
        c = small_cache(assoc=4, sets=1)
        _, way = c.access(0x1000)
        for addr in (0x2000, 0x3000, 0x4000):
            c.access(addr)
        assert c.lookup(0x1000, update_lru=False) == (True, way)

    def test_way_can_change_after_eviction_and_refill(self):
        c = small_cache(assoc=2, sets=1)
        _, first_way = c.access(0x000)
        c.access(0x040)
        c.access(0x040)        # make 0x000 LRU
        c.access(0x080)        # evict 0x000
        c.access(0x040)
        _, new_way = c.access(0x000)   # refill
        # 0x000 must land in whichever way was victim; possibly different.
        assert new_way in (0, 1)

    def test_eviction_counted(self):
        c = small_cache(assoc=1, sets=1)
        c.access(0x000)
        c.access(0x040)
        assert c.stats.evictions == 1


class TestProbe:
    def test_probe_does_not_allocate(self):
        c = small_cache()
        hit, way = c.probe(0x1000)
        assert not hit and way is None
        assert c.resident_blocks() == 0
        assert c.stats.probe_misses == 1

    def test_probe_does_not_touch_lru(self):
        c = small_cache(assoc=2, sets=1)
        c.access(0x000)
        c.access(0x040)          # LRU order: 0x040, 0x000
        c.probe(0x000)           # must NOT promote 0x000
        c.access(0x080)          # evicts LRU = 0x000
        assert not c.lookup(0x000, update_lru=False)[0]

    def test_probe_hit_reports_way(self):
        c = small_cache()
        _, way = c.access(0x1000)
        hit, probe_way = c.probe(0x1000)
        assert hit and probe_way == way
        assert c.stats.probe_hits == 1


class TestInvalidate:
    def test_invalidate_resident(self):
        c = small_cache()
        c.access(0x1000)
        assert c.invalidate(0x1000)
        assert not c.lookup(0x1000, update_lru=False)[0]

    def test_invalidate_absent_returns_false(self):
        assert not small_cache().invalidate(0x1000)

    def test_fill_after_invalidate_reuses_way(self):
        c = small_cache(assoc=2, sets=1)
        c.access(0x000)
        c.access(0x040)
        c.invalidate(0x000)
        way = c.fill(0x080)
        assert c.resident_blocks() == 2
        assert way in (0, 1)


class TestProperties:
    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=0, max_value=63).map(lambda b: b * 64),
                    min_size=1, max_size=200))
    def test_occupancy_never_exceeds_capacity(self, addrs):
        c = small_cache(assoc=2, sets=4)
        for addr in addrs:
            c.access(addr)
        assert c.resident_blocks() <= 8

    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=0, max_value=63).map(lambda b: b * 64),
                    min_size=1, max_size=200))
    def test_access_after_access_hits(self, addrs):
        c = small_cache(assoc=2, sets=4)
        for addr in addrs:
            c.access(addr)
            hit, _ = c.lookup(addr, update_lru=False)
            assert hit

    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=0, max_value=63).map(lambda b: b * 64),
                    min_size=1, max_size=200))
    def test_stats_balance(self, addrs):
        c = small_cache()
        for addr in addrs:
            c.access(addr)
        assert c.stats.hits + c.stats.misses == len(addrs)
        assert 0.0 <= c.stats.hit_rate <= 1.0
