"""Tests for history folding, TAGE, ITTAGE, RAS and the branch unit."""

import pytest
from hypothesis import given, strategies as st

from repro.branch import (
    BranchUnit,
    GlobalHistory,
    Ittage,
    ReturnAddressStack,
    Tage,
    fold_history,
)
from repro.isa import Instruction, OpClass


class TestGlobalHistory:
    def test_push_shifts(self):
        h = GlobalHistory(4)
        for bit in (1, 0, 1, 1):
            h.push(bit)
        assert h.value == 0b1011

    def test_bounded_length(self):
        h = GlobalHistory(4)
        for _ in range(10):
            h.push(1)
        assert h.value == 0b1111

    def test_snapshot_restore(self):
        h = GlobalHistory(8)
        h.push(1)
        snap = h.snapshot()
        h.push(0)
        h.restore(snap)
        assert h.value == snap

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            GlobalHistory(0)

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1),
           st.integers(min_value=1, max_value=16))
    def test_fold_fits_target(self, history, bits):
        assert 0 <= fold_history(history, 32, bits) < (1 << bits)

    def test_fold_zero_target(self):
        assert fold_history(0xFFFF, 16, 0) == 0

    def test_fold_differs_for_different_history(self):
        a = fold_history(0xFF00, 16, 8)     # folds to 0xFF
        b = fold_history(0x1100, 16, 8)     # folds to 0x11
        assert a != b

    def test_fold_xors_chunks(self):
        assert fold_history(0xAB00 | 0x00CD, 16, 8) == 0xAB ^ 0xCD


class TestTage:
    def test_learns_always_taken(self):
        t = Tage()
        for _ in range(100):
            t.update(0x1000, True)
            t.update_history(True)
        assert t.predict(0x1000)

    def test_learns_alternating_pattern(self):
        t = Tage()
        misses = 0
        for i in range(600):
            taken = bool(i % 2)
            if t.update(0x1000, taken):
                misses += 1
            t.update_history(taken)
        # Late mispredictions should be rare once learned.
        late = 0
        for i in range(600, 700):
            taken = bool(i % 2)
            if t.update(0x1000, taken):
                late += 1
            t.update_history(taken)
        assert late <= 5

    def test_cannot_learn_random(self):
        import random
        rng = random.Random(42)
        t = Tage()
        wrong = 0
        outcomes = [rng.random() < 0.5 for _ in range(2000)]
        for taken in outcomes:
            if t.update(0x1000, taken):
                wrong += 1
            t.update_history(taken)
        assert wrong > 600       # ~50% is unlearnable

    def test_accuracy_property(self):
        t = Tage()
        for i in range(50):
            t.update(0x1000 + 4 * (i % 3), True)
            t.update_history(True)
        assert 0.0 <= t.accuracy <= 1.0

    def test_storage_bits_positive(self):
        assert Tage().storage_bits() > 10_000

    def test_distinct_branches_do_not_destroy_each_other(self):
        t = Tage()
        for _ in range(200):
            t.update(0x1000, True)
            t.update_history(True)
            t.update(0x2000, False)
            t.update_history(False)
        assert t.predict(0x1000)
        assert not t.predict(0x2000)


class TestIttage:
    def test_learns_stable_target(self):
        it = Ittage()
        for _ in range(20):
            it.update(0x1000, 0x5000)
            it.update_history(0x5000)
        assert it.predict(0x1000) == 0x5000

    def test_history_correlated_targets(self):
        it = Ittage()
        # Target alternates with history pattern; the targets differ in
        # the low bits ITTAGE shifts into its history.
        for i in range(800):
            target = 0x5004 if i % 2 else 0x6008
            it.update(0x1000, target)
            it.update_history(target)
        wrong = 0
        for i in range(800, 900):
            target = 0x5004 if i % 2 else 0x6008
            if it.predict(0x1000) != target:
                wrong += 1
            it.update(0x1000, target)
            it.update_history(target)
        assert wrong < 30

    def test_unknown_pc_predicts_none(self):
        assert Ittage().predict(0x1234) is None


class TestRas:
    def test_lifo(self):
        ras = ReturnAddressStack()
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100

    def test_underflow_returns_none(self):
        ras = ReturnAddressStack()
        assert ras.pop() is None
        assert ras.underflows == 1

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(depth=2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None

    def test_peek_does_not_pop(self):
        ras = ReturnAddressStack()
        ras.push(7)
        assert ras.peek() == 7
        assert len(ras) == 1

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(depth=0)


class TestBranchUnit:
    def test_call_return_pairs_predict_correctly(self):
        bu = BranchUnit()
        for _ in range(10):
            call = Instruction(pc=0x1000, op=OpClass.CALL, taken=True, target=0x2000)
            ret = Instruction(pc=0x2010, op=OpClass.RETURN, taken=True, target=0x1004)
            assert not bu.resolve(call)
            assert not bu.resolve(ret)
        assert bu.stats.returns_mispredicted == 0

    def test_mismatched_return_mispredicts(self):
        bu = BranchUnit()
        ret = Instruction(pc=0x2010, op=OpClass.RETURN, taken=True, target=0x9999C)
        assert bu.resolve(ret)      # empty RAS

    def test_jump_never_mispredicts(self):
        bu = BranchUnit()
        jump = Instruction(pc=0x1000, op=OpClass.JUMP, taken=True, target=0x4000)
        assert not bu.resolve(jump)

    def test_conditional_counted(self):
        bu = BranchUnit()
        br = Instruction(pc=0x1000, op=OpClass.BRANCH, taken=True, target=0x800)
        bu.resolve(br)
        assert bu.stats.conditional == 1

    def test_non_branch_rejected(self):
        bu = BranchUnit()
        alu = Instruction(pc=0, op=OpClass.ALU, dests=(1,), values=(0,))
        with pytest.raises(ValueError):
            bu.resolve(alu)

    def test_indirect_trains_ittage(self):
        bu = BranchUnit()
        ind = Instruction(pc=0x3000, op=OpClass.INDIRECT, taken=True, target=0x7000)
        for _ in range(12):
            bu.resolve(ind)
        assert not bu.resolve(ind)
