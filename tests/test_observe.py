"""Tests for repro.observe: tracer protocol, backends, CLI integration.

The two properties that matter most:

* **Zero semantic overhead** — attaching a tracer must not change any
  simulated outcome: the traced run dispatches to the reference
  implementations, which are golden-verified against the inlined fast
  paths, so results are bit-identical either way.
* **Event fidelity** — the interval rows must reconcile with the
  aggregate counters the simulation reports anyway.
"""

import json

import pytest

from repro.__main__ import main
from repro.faults import FaultInjected, FaultPlan
from repro.observe import (
    ChromeTraceExporter,
    FaultTripwire,
    FlightRecorder,
    IntervalMetricsCollector,
    MultiTracer,
    Tracer,
    render_report,
    run_traced,
)
from repro.pipeline import SimResult, simulate
from repro.runtime import Runtime
from repro.runtime.registry import get_scheme
from repro.workloads import build_workload

SCHEME_IDS = ("dlvp", "cap", "vtage", "dvtage", "tournament")


class Recorder(Tracer):
    """Flat list of (kind, fields) for assertions."""

    def __init__(self):
        self.events = []

    def emit(self, kind, **fields):
        self.events.append((kind, fields))

    def kinds(self):
        return [k for k, _ in self.events]


def _trace(n=3000, name="aifirf"):
    return build_workload(name, n)


class TestZeroOverheadContract:
    @pytest.mark.parametrize("scheme_id", (None,) + SCHEME_IDS)
    def test_traced_run_bit_identical(self, scheme_id):
        trace = _trace()
        build = (lambda: None) if scheme_id is None else get_scheme(scheme_id).build
        untraced = simulate(trace, scheme=build())
        traced = simulate(trace, scheme=build(), tracer=Recorder())
        u, t = untraced.to_dict(), traced.to_dict()
        u.pop("intervals"), t.pop("intervals")
        assert u == t

    def test_untraced_components_hold_no_tracer(self):
        scheme = get_scheme("dlvp").build()
        trace = _trace()
        simulate(trace, scheme=scheme)
        assert scheme.engine._tracer is None
        assert scheme.engine.paq._tracer is None


class TestTracerProtocol:
    def test_default_hooks_are_noops(self):
        tracer = Tracer()
        tracer.on_commit(0, 1, "LOAD")
        tracer.on_recovery(5, "branch", 0x40)
        tracer.on_lscd_insert(0x40, evicted=None, refreshed=False)

    def test_hooks_flow_through_emit(self):
        rec = Recorder()
        rec.on_recovery(5, "value", 0x40)
        rec.on_paq_service(9, 0x1000, True)
        assert rec.events == [
            ("recovery", {"cycle": 5, "reason": "value", "pc": 0x40}),
            ("paq_service", {"cycle": 9, "addr": 0x1000, "bypass": True}),
        ]

    def test_full_event_stream_from_dlvp_run(self):
        rec = Recorder()
        # long enough for the FPC confidence ramp to produce address
        # predictions (and hence PAQ/probe/verdict traffic)
        simulate(_trace(6000), scheme=get_scheme("dlvp").build(), tracer=rec)
        kinds = set(rec.kinds())
        assert {"run_start", "commit", "fetch_predict", "demand_access",
                "probe", "paq_enqueue", "paq_service", "apt_train",
                "vpe_verdict", "run_end"} <= kinds
        assert rec.kinds()[0] == "run_start"
        assert rec.kinds()[-1] == "run_end"

    def test_multitracer_fans_out(self):
        a, b = Recorder(), Recorder()
        multi = MultiTracer(a, b, None)
        assert len(multi.tracers) == 2
        multi.on_commit(3, 7, "ALU")
        assert a.events == b.events == [
            ("commit", {"index": 3, "cycle": 7, "op": "ALU"})
        ]


class TestIntervalMetrics:
    def test_rows_reconcile_with_aggregates(self):
        collector = IntervalMetricsCollector(interval=1000)
        trace = _trace(6000)
        result = simulate(trace, scheme=get_scheme("dlvp").build(),
                          tracer=collector)
        rows = result.intervals
        assert rows is not None and len(rows) == 6
        assert rows[0]["start"] == 0
        assert rows[-1]["end"] == result.instructions
        assert all(rows[i]["end"] == rows[i + 1]["start"]
                   for i in range(len(rows) - 1))
        assert sum(r["cycles"] for r in rows) == result.cycles
        assert sum(r["value_predictions"] for r in rows) == \
            result.value_predictions
        assert sum(r["value_correct"] for r in rows) == \
            result.value_predictions - result.value_mispredictions
        assert sum(r["recoveries_value"] for r in rows) == \
            result.flushes.value
        assert sum(r["recoveries_branch"] for r in rows) == \
            result.flushes.branch

    def test_confidence_ramp_visible(self):
        # The FPC confidence ramp: early intervals must show lower
        # coverage than late ones on a DLVP-friendly workload.
        collector = IntervalMetricsCollector(interval=8000)
        result = simulate(_trace(24000), scheme=get_scheme("dlvp").build(),
                          tracer=collector)
        rows = result.intervals
        assert rows[0]["coverage"] < rows[-1]["coverage"]

    def test_intervals_survive_serialization(self):
        collector = IntervalMetricsCollector(interval=1000)
        result = simulate(_trace(), scheme=get_scheme("dlvp").build(),
                          tracer=collector)
        round_tripped = SimResult.from_dict(result.to_dict())
        assert round_tripped.intervals == result.intervals

    def test_render_report(self):
        collector = IntervalMetricsCollector(interval=1000)
        result = simulate(_trace(2000), scheme=get_scheme("dlvp").build(),
                          tracer=collector)
        text = render_report(result.intervals)
        assert "cov%" in text and "0-1000" in text
        assert render_report([]) == "(no interval data)"

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            IntervalMetricsCollector(interval=0)


class TestSchemaVersioning:
    def test_v3_roundtrip(self):
        result = simulate(_trace(1000))
        data = result.to_dict()
        assert data["schema"] == 3
        assert "intervals" in data
        assert SimResult.from_dict(data).to_dict() == data

    def test_v2_payload_still_loads(self):
        data = simulate(_trace(1000)).to_dict()
        data.pop("intervals")
        data["schema"] = 2
        loaded = SimResult.from_dict(data)
        assert loaded.intervals is None
        assert loaded.cycles == data["cycles"]

    def test_unknown_schema_rejected(self):
        data = simulate(_trace(1000)).to_dict()
        data["schema"] = 99
        with pytest.raises(ValueError):
            SimResult.from_dict(data)


class TestChromeTrace:
    def test_export_loads_as_trace_event_json(self, tmp_path):
        exporter = ChromeTraceExporter()
        simulate(_trace(6000), scheme=get_scheme("dlvp").build(),
                 tracer=exporter)
        out = tmp_path / "out.trace.json"
        exporter.write(out)
        payload = json.loads(out.read_text())
        events = payload["traceEvents"]
        assert isinstance(events, list) and events
        phases = {e["ph"] for e in events}
        assert "i" in phases          # instant events
        assert "C" in phases          # PAQ occupancy counter track
        assert "M" in phases          # thread-name metadata
        for e in events:
            assert {"ph", "name", "pid", "tid"} <= set(e)
            if e["ph"] != "M":
                assert isinstance(e["ts"], int)

    def test_commit_sampling_bounds_size(self):
        dense = ChromeTraceExporter(commit_sample=1)
        sparse = ChromeTraceExporter(commit_sample=64)
        simulate(_trace(), scheme=get_scheme("dlvp").build(), tracer=dense)
        simulate(_trace(), scheme=get_scheme("dlvp").build(), tracer=sparse)
        dense_commits = sum(1 for e in dense.events if e["name"] == "commit")
        sparse_commits = sum(1 for e in sparse.events if e["name"] == "commit")
        assert dense_commits > sparse_commits * 32


class TestFlightRecorder:
    def test_ring_keeps_last_n(self):
        flight = FlightRecorder(capacity=16)
        simulate(_trace(), scheme=get_scheme("dlvp").build(), tracer=flight)
        tail = flight.dump()
        assert len(tail) == 16
        assert flight.seen > 16
        assert tail[-1]["kind"] == "run_end"

    def test_tripwire_raises_mid_run(self):
        plan = FaultPlan.parse("raise@aifirf/dlvp")
        rule = plan.rule_for("aifirf", "dlvp", 1, "key")
        tripwire = FaultTripwire(rule)
        with pytest.raises(FaultInjected, match="instruction 1500"):
            simulate(_trace(3000), scheme=get_scheme("dlvp").build(),
                     tracer=tripwire)
        assert tripwire.tripped

    def test_tripwire_requires_raise_rule(self):
        plan = FaultPlan.parse("crash@*/*")
        with pytest.raises(ValueError):
            FaultTripwire(plan.rules[0])

    def test_run_traced_dumps_flight_on_fault(self, tmp_path):
        plan = FaultPlan.parse("raise@aifirf/dlvp")
        rule = plan.rule_for("aifirf", "dlvp", 1, "key")
        out = tmp_path / "run.trace.json"

        class MemoryJournal:
            def __init__(self):
                self.events = []

            def event(self, kind, **fields):
                self.events.append((kind, fields))

        journal = MemoryJournal()
        with pytest.raises(FaultInjected):
            run_traced(_trace(3000), scheme=get_scheme("dlvp").build(),
                       tripwire=FaultTripwire(rule), out=out, journal=journal)
        dump_path = tmp_path / "run.trace.flight.json"
        assert dump_path.exists()
        dump = json.loads(dump_path.read_text())
        assert dump["tail"] and dump["events_seen"] > 0
        kinds = [k for k, _ in journal.events]
        assert kinds == ["flight_recorder_dump"]
        fields = journal.events[0][1]
        assert fields["trace"] == "aifirf"
        assert "FaultInjected" in fields["error"]
        assert not out.exists()       # no chrome trace for a dead run

    def test_run_traced_success_writes_chrome_trace(self, tmp_path):
        out = tmp_path / "ok.trace.json"
        run = run_traced(_trace(2000), scheme=get_scheme("dlvp").build(),
                         out=out)
        assert run.result is not None and run.result.intervals
        assert json.loads(out.read_text())["traceEvents"]


class TestRuntimeIntegration:
    def test_traced_jobs_write_artifacts(self, tmp_path):
        runtime = Runtime(jobs=1, cache_dir=tmp_path / "cache",
                          trace_dir=tmp_path / "traces")
        grid = runtime.run_grid(["baseline", "dlvp"], ["aifirf"], 2000)
        assert grid.result("dlvp", "aifirf").intervals
        assert (tmp_path / "traces" / "aifirf-dlvp.trace.json").exists()
        assert (tmp_path / "traces" / "aifirf-baseline.trace.json").exists()

    def test_traced_jobs_bypass_cache_reads(self, tmp_path):
        # warm the cache untraced...
        Runtime(jobs=1, cache_dir=tmp_path / "c").run_grid(
            ["dlvp"], ["aifirf"], 2000
        )
        # ...then a traced run of the same cell must still execute (the
        # artifacts are the point of tracing)
        runtime = Runtime(jobs=1, cache_dir=tmp_path / "c",
                          trace_dir=tmp_path / "t")
        runtime.run_grid(["dlvp"], ["aifirf"], 2000)
        assert runtime.journal.count("cache_hit") == 0
        assert (tmp_path / "t" / "aifirf-dlvp.trace.json").exists()


class TestCli:
    @pytest.fixture(autouse=True)
    def isolated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        self.tmp_path = tmp_path

    def test_trace_command(self, capsys):
        out = self.tmp_path / "t.trace.json"
        assert main(["trace", "aifirf", "--scheme", "dlvp",
                     "--out", str(out), "--instructions", "3000",
                     "--interval", "1000"]) == 0
        printed = capsys.readouterr()
        assert "cov%" in printed.out
        assert json.loads(out.read_text())["traceEvents"]

    def test_trace_unknown_scheme(self):
        assert main(["trace", "aifirf", "--scheme", "bogus"]) == 2

    def test_observe_report_after_trace(self, capsys):
        out = self.tmp_path / "t.trace.json"
        assert main(["trace", "aifirf", "--out", str(out),
                     "--instructions", "3000", "--interval", "1000"]) == 0
        capsys.readouterr()
        assert main(["observe", "report"]) == 0
        report = capsys.readouterr().out
        assert "aifirf/dlvp" in report and "cov%" in report

    def test_observe_report_no_journal(self, capsys):
        assert main(["observe", "report",
                     "--journal", str(self.tmp_path / "missing.jsonl")]) == 2

    def test_trace_with_raise_fault(self, capsys):
        out = self.tmp_path / "f.trace.json"
        assert main(["trace", "aifirf", "--out", str(out),
                     "--instructions", "3000",
                     "--fault", "raise@aifirf/dlvp"]) == 1
        err = capsys.readouterr().err
        assert "flight recorder tail" in err
        assert (self.tmp_path / "f.trace.flight.json").exists()

    def test_run_with_trace_flag(self, capsys):
        traces = self.tmp_path / "traces"
        assert main(["run", "aifirf", "--instructions", "2000",
                     "--trace", str(traces)]) == 0
        assert (traces / "aifirf-dlvp.trace.json").exists()
