"""Tests for the CAP baseline address predictor."""

import pytest

from repro.predictors import CapConfig, CapPredictor


def drive(cap, pc, addrs):
    """Feed an address sequence through predict+train; returns predictions."""
    out = []
    for addr in addrs:
        out.append(cap.predict_pc(pc))
        cap.train(pc, addr)
    return out


class TestBasics:
    def test_unknown_pc_no_prediction(self):
        assert CapPredictor().predict_pc(0x1000) is None

    def test_constant_address_predicted(self):
        cap = CapPredictor(CapConfig(confidence_threshold=3, update_delay=0))
        preds = drive(cap, 0x1000, [0x5000] * 20)
        assert preds[-1] is not None
        assert preds[-1].addr == 0x5000

    def test_confidence_threshold_delays_prediction(self):
        lo = CapPredictor(CapConfig(confidence_threshold=3, update_delay=0))
        hi = CapPredictor(CapConfig(confidence_threshold=10, update_delay=0))
        seq = [0x5000] * 8
        last_lo = drive(lo, 0x1000, seq)[-1]
        last_hi = drive(hi, 0x1000, seq)[-1]
        assert last_lo is not None
        assert last_hi is None

    def test_periodic_pattern_learned_without_delay(self):
        cap = CapPredictor(CapConfig(confidence_threshold=3, update_delay=0))
        pattern = [0x5000, 0x5008, 0x5010, 0x5018]
        preds = drive(cap, 0x1000, pattern * 20)
        correct = sum(
            1 for p, a in zip(preds[40:], (pattern * 20)[40:])
            if p is not None and p.addr == a
        )
        assert correct > 20

    def test_random_addresses_never_confident(self):
        import random
        rng = random.Random(5)
        cap = CapPredictor(CapConfig(confidence_threshold=3, update_delay=0))
        addrs = [rng.randrange(1 << 20) * 8 for _ in range(300)]
        preds = drive(cap, 0x1000, addrs)
        assert sum(1 for p in preds if p is not None) < 20


class TestUpdateDelay:
    def test_delay_blocks_tight_period_patterns(self):
        """With in-flight lag, a short-period stream's history trails
        reality and confidence cannot build — the structural weakness
        Section 2.2 describes."""
        delayed = CapPredictor(CapConfig(confidence_threshold=3, update_delay=48))
        pattern = [0x5000 + 8 * i for i in range(5)]    # 5 does not divide 48
        preds = drive(delayed, 0x1000, pattern * 64)
        assert sum(1 for p in preds if p is not None) < 10

    def test_delay_aligned_period_still_works(self):
        # A period dividing the delay keeps the stale history aligned —
        # those streams survive, which bounds how much the lag costs.
        delayed = CapPredictor(CapConfig(confidence_threshold=3, update_delay=48))
        pattern = [0x5000 + 8 * i for i in range(8)]    # 8 divides 48
        preds = drive(delayed, 0x1000, pattern * 64)
        assert sum(1 for p in preds if p is not None) > 50

    def test_delay_preserves_constant_loads(self):
        cap = CapPredictor(CapConfig(confidence_threshold=3, update_delay=48))
        preds = drive(cap, 0x1000, [0x5000] * 120)
        assert preds[-1] is not None and preds[-1].addr == 0x5000


class TestStats:
    def test_record_outcome(self):
        cap = CapPredictor()
        cap.record_outcome(None, 0x100)
        assert cap.stats.loads_seen == 1
        assert cap.stats.predictions == 0
        assert cap.stats.coverage == 0.0

    def test_storage_bits_matches_table4(self):
        bits = CapPredictor().storage_bits()
        assert 90_000 < bits < 100_000       # paper: ~95k bits (ARMv8)

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            CapConfig(load_buffer_entries=1000)
        with pytest.raises(ValueError):
            CapConfig(confidence_threshold=0)


class TestCapacityPressure:
    def test_colliding_static_loads_evict_each_other(self):
        """CAP's load buffer replaces on miss — a cold load landing on a
        hot load's slot forces a retrain (unlike PAP's Policy-2)."""
        cap = CapPredictor(CapConfig(confidence_threshold=3, update_delay=0))
        hot = 0x1000
        drive(cap, hot, [0x5000] * 20)
        assert cap.predict_pc(hot) is not None
        # Find a PC colliding in the LB with a different tag.
        collider = None
        for candidate in range(0x100000, 0x400000, 4):
            if (cap._lb_index(candidate) == cap._lb_index(hot)
                    and cap._lb_tag(candidate) != cap._lb_tag(hot)):
                collider = candidate
                break
        assert collider is not None
        cap.train(collider, 0x9000)
        assert cap.predict_pc(hot) is None      # evicted, must retrain
