"""Fabric-backed grid execution and trace reuse across retries.

The shared trace fabric must change *how fast* a grid settles, never
*what* it settles to:

* a fabric grid (serial and parallel) produces results bit-identical
  to the stock per-cell object-engine grid;
* a crashing cell inside a trace group fails alone — its groupmates
  settle ok through the same dispatch;
* a retried attempt inside one worker reuses the trace the first
  attempt built (the memo), so the journal shows exactly one
  ``trace_built`` per (workload, instructions) even under retries.
"""

import pytest

from repro.runtime import Runtime, make_job, read_journal, register_scheme
from repro.runtime.jobs import _TRACE_MEMO

WORKLOADS = ["gzip", "nat"]
SCHEMES = ["baseline", "dlvp", "cap"]
N = 1_500


def _crashing_factory():
    import os

    os._exit(3)


register_scheme("fabric/dies", _crashing_factory)


def _cells(grid):
    return {
        cell: grid.result(*cell)
        for cell in grid.cells
    }


@pytest.fixture(autouse=True)
def _fresh_memo():
    _TRACE_MEMO.clear()
    yield
    _TRACE_MEMO.clear()


class TestFabricGrid:
    def test_fabric_results_identical_to_stock(self, tmp_path):
        stock = Runtime(jobs=1, cache_dir=tmp_path / "stock")
        reference = _cells(stock.run_grid(SCHEMES, WORKLOADS, N))
        for jobs, label in ((1, "serial"), (2, "parallel")):
            runtime = Runtime(jobs=jobs, cache_dir=tmp_path / f"fab{jobs}",
                              trace_format="shared")
            grid = runtime.run_grid(SCHEMES, WORKLOADS, N)
            assert not grid.failures(), label
            assert _cells(grid) == reference, label

    def test_fabric_journal_records_group_lifecycle(self, tmp_path):
        journal_path = tmp_path / "run.jsonl"
        runtime = Runtime(jobs=1, cache_dir=tmp_path, trace_format="shared",
                          journal_path=journal_path)
        grid = runtime.run_grid(SCHEMES, ["gzip"], N)
        assert not grid.failures()
        events = read_journal(journal_path)
        published = [e for e in events if e["event"] == "trace_published"]
        assert len(published) == 1
        assert published[0]["cells"] == len(SCHEMES)
        assert published[0]["ref"].partition(":")[0] in ("shm", "file")
        finished = [e for e in events if e["event"] == "job_finished"]
        assert {e.get("trace_source") for e in finished} == {"shared"}

    def test_crashing_cell_fails_alone_in_its_group(self, tmp_path):
        runtime = Runtime(jobs=2, cache_dir=tmp_path, retries=1,
                          trace_format="shared")
        jobs = [
            make_job("gzip", N, "baseline", trace_format="shared"),
            make_job("gzip", N, "fabric/dies", trace_format="shared"),
            make_job("gzip", N, "dlvp", trace_format="shared"),
        ]
        outcomes = runtime.run_jobs(jobs)
        assert outcomes[jobs[0].key].status == "ok"
        assert outcomes[jobs[2].key].status == "ok"
        crashed = outcomes[jobs[1].key]
        assert crashed.status == "error"
        assert "worker process died" in crashed.error


class TestTraceMemoAcrossRetries:
    def test_retry_reuses_first_attempts_trace(self, tmp_path):
        """Fails before the memo: attempt 2 used to rebuild the trace.

        With ``use_cache=False`` there is no trace cache to hide behind;
        only the in-worker memo can make the second attempt's
        ``trace_source`` read ``"memo"`` — and the journal must show the
        build happened exactly once.
        """
        journal_path = tmp_path / "retry.jsonl"
        runtime = Runtime(jobs=1, use_cache=False, retries=1,
                          journal_path=journal_path,
                          faults="raise@gzip/dlvp:1")
        outcomes = runtime.run_jobs([make_job("gzip", N, "dlvp")])
        (outcome,) = outcomes.values()
        assert outcome.status == "ok"
        assert outcome.attempts == 2
        events = read_journal(journal_path)
        built = [e for e in events if e["event"] == "trace_built"]
        assert len(built) == 1
        assert built[0]["attempt"] == 1
        finished = [e for e in events if e["event"] == "job_finished"]
        assert finished[-1]["trace_source"] == "memo"
