"""Behavioural invariants of the individual kernel generators."""

import pytest

from repro.isa import OpClass
from repro.memory import MemoryImage
from repro.trace import Trace, load_store_conflicts, repeatability
from repro.workloads.base import WorkloadBuilder
from repro.workloads.kernels import (
    bytecode_interpreter,
    call_tree,
    flag_check_loop,
    hash_lookup,
    matrix_multiply,
    object_graph,
    pointer_chase,
    producer_consumer,
    streaming_sum,
    string_scan,
    table_state_machine,
    vector_filter,
)


def build(kernel, n=6000, seed=3, **params):
    builder = WorkloadBuilder("k", seed=seed)
    kernel(builder, n, **params)
    return builder.build()


def replay_consistent(trace: Trace) -> bool:
    image = MemoryImage()
    for inst in trace:
        if inst.op == OpClass.STORE:
            image.write(inst.mem_addr, inst.mem_size, inst.values[0])
        elif inst.op == OpClass.LOAD:
            for k, value in enumerate(inst.values):
                if image.read(inst.mem_addr + k * inst.mem_size, inst.mem_size) != value:
                    return False
    return True


ALL_KERNELS = [
    (streaming_sum, {}),
    (matrix_multiply, {"dim": 12}),
    (pointer_chase, {"nodes": 64}),
    (call_tree, {}),
    (hash_lookup, {"buckets": 64}),
    (bytecode_interpreter, {}),
    (table_state_machine, {}),
    (vector_filter, {}),
    (string_scan, {}),
    (producer_consumer, {}),
    (object_graph, {}),
    (flag_check_loop, {}),
]


class TestAllKernels:
    @pytest.mark.parametrize("kernel,params", ALL_KERNELS,
                             ids=lambda k: getattr(k, "__name__", str(k)))
    def test_replay_consistency(self, kernel, params):
        assert replay_consistent(build(kernel, **params))

    @pytest.mark.parametrize("kernel,params", ALL_KERNELS,
                             ids=lambda k: getattr(k, "__name__", str(k)))
    def test_budget_respected(self, kernel, params):
        trace = build(kernel, n=3000, **params)
        assert 2500 <= len(trace) <= 3800

    @pytest.mark.parametrize("kernel,params", ALL_KERNELS,
                             ids=lambda k: getattr(k, "__name__", str(k)))
    def test_deterministic(self, kernel, params):
        assert build(kernel, **params).instructions == \
            build(kernel, **params).instructions


class TestFlagLoop:
    def test_invalid_lead_rejected(self):
        with pytest.raises(ValueError, match="update_lead"):
            build(flag_check_loop, ring_slots=8, update_lead=8)

    def test_conflicts_are_committed(self):
        trace = build(flag_check_loop, n=12000, ring_slots=32, update_lead=24)
        profile = load_store_conflicts(trace, window=64)
        assert profile.committed_share > 0.9
        assert profile.conflict_committed > 100

    def test_reentry_skips_reseeding(self):
        builder = WorkloadBuilder("k", seed=3)
        flag_check_loop(builder, 2000)
        first_len = len(builder)
        flag_check_loop(builder, 4000)
        # Second entry adds loop body only, no seed stores at code_base.
        seeds = sum(1 for inst in builder.build().instructions[first_len:]
                    if inst.op == OpClass.STORE and inst.pc == 0xC0000)
        assert seeds == 0


class TestObjectGraph:
    def test_chain_is_serially_dependent(self):
        trace = build(object_graph, chain_depth=4, num_roots=2)
        # Consecutive chain loads feed each other through _R_PTR.
        loads = [i for i in trace if i.is_load and i.srcs == (13,)]
        assert len(loads) > 50

    def test_repoint_preserves_reachability(self):
        """After a repoint the chain still reaches the same leaf value."""
        trace = build(object_graph, n=8000, chain_depth=3, num_roots=4,
                      repoint_every=20)
        assert replay_consistent(trace)

    def test_coupling_knob(self):
        coupled = build(object_graph, couple_every=1)
        uncoupled = build(object_graph, couple_every=0)
        n_coupled = sum(1 for i in coupled if i.is_load and 14 in i.srcs)
        n_uncoupled = sum(1 for i in uncoupled if i.is_load and 14 in i.srcs)
        assert n_coupled > n_uncoupled


class TestProducerConsumer:
    def test_inflight_conflicts_by_design(self):
        trace = build(producer_consumer)
        profile = load_store_conflicts(trace, window=64)
        assert profile.fraction_inflight > 0.05


class TestVectorFilter:
    def test_vector_and_ldm_loads_present(self):
        trace = build(vector_filter, ldm_regs=4)
        summary = trace.summary()
        assert summary.vector_loads > 0
        assert summary.multi_dest_loads > 0      # one LDM per VLD here

    def test_ref_blocks_emit_extra_loads(self):
        plain = build(vector_filter, ref_blocks=0)
        with_refs = build(vector_filter, ref_blocks=16)
        plain_pcs = {i.pc for i in plain if i.is_load}
        ref_pcs = {i.pc for i in with_refs if i.is_load}
        assert len(ref_pcs) > len(plain_pcs)


class TestStateMachine:
    def test_random_states_are_aperiodic(self):
        trace = build(table_state_machine, n=8000, num_states=4,
                      random_states=True)
        shared = [i.mem_addr for i in trace
                  if i.is_load and i.pc == 0x70800]
        # The shared-lookup address sequence should not be short-periodic.
        for period in (2, 3, 4, 6):
            assert any(shared[k] != shared[k + period]
                       for k in range(len(shared) - period))

    def test_prelude_pcs_encode_state(self):
        trace = build(table_state_machine, num_states=4, path_loads=2)
        prelude_pcs = {i.pc for i in trace
                       if i.is_load and 0x70100 <= i.pc < 0x70800}
        # Two loads per state, PC-staggered by state bits.
        assert len(prelude_pcs) >= 6


class TestHashLookup:
    def test_low_occupancy_values_repeat(self):
        trace = build(hash_lookup, n=8000, buckets=256, occupancy=0.02)
        profile = repeatability(trace)
        assert profile.fraction_repeating("value", 8) > 0.3

    def test_bucket_addresses_erratic(self):
        trace = build(hash_lookup, n=8000, buckets=256, occupancy=0.02)
        bucket_loads = [i.mem_addr for i in trace
                        if i.is_load and i.pc == 0x50108]
        assert len(set(bucket_loads)) > 50


class TestCallTree:
    def test_spill_reload_pairs_match(self):
        """Every epilogue reload returns exactly what the prologue spilled."""
        assert replay_consistent(build(call_tree, depth=4))

    def test_ldp_knob(self):
        with_ldp = build(call_tree, use_ldp=True)
        without = build(call_tree, use_ldp=False)
        assert with_ldp.summary().multi_dest_loads > 0
        assert without.summary().multi_dest_loads == 0
