"""Tests for :mod:`repro.serve` — the multi-tenant simulation farm.

Every test runs a real server (background event loop, real TCP socket,
real forked workers) and drives it through the public client, because
the farm's claims — cross-tenant dedup, exactly-once execution,
fairness, crash-masking, graceful drain — are concurrency claims that
only mean something against the real stack.  Assertions lean on the
farm journal (``serve.jsonl``): ``job_started`` counts prove
exactly-once, event order proves fairness, terminal events prove the
drain.
"""

import json
import threading
import time
from collections import Counter

import pytest

from repro.runtime import read_journal
from repro.serve import (
    ServeClient,
    ServeError,
    ServeUnavailable,
    SweepServer,
    submit_or_local,
)

N = 1_500


def start_server(tmp_path, **kwargs):
    """A running farm on an ephemeral port over ``tmp_path/cache``."""
    kwargs.setdefault("workers", 2)
    server = SweepServer(port=0, cache_dir=tmp_path / "cache", **kwargs)
    handle = server.start_in_thread()
    return server, handle


def farm_journal(tmp_path):
    return read_journal(tmp_path / "cache" / "serve.jsonl")


def started_counts(events):
    """job_started occurrences per job key (attempts inflate these)."""
    return Counter(e["key"] for e in events if e["event"] == "job_started")


class TestSubmitRoundTrip:
    def test_cold_submit_executes_and_returns_results(self, tmp_path):
        server, handle = start_server(tmp_path)
        try:
            client = ServeClient(host=handle.host, port=handle.port)
            response = client.submit(
                ["baseline", "dlvp"], ["gzip"], n_instructions=N,
                tenant="alice",
            )
            assert response.complete
            assert response.summary == {
                "cells": 2, "executed": 2, "cached": 0, "shared": 0,
                "failed": 0, "interrupted": 0,
            }
            result = response.result("dlvp", "gzip")
            assert result.trace_name == "gzip" and result.instructions > 0
            assert response.events, "watch=True must stream progress"
        finally:
            handle.stop()
        events = farm_journal(tmp_path)
        kinds = Counter(e["event"] for e in events)
        assert kinds["grid_submitted"] == 1
        assert kinds["job_finished"] == 2
        assert kinds["server_shutdown"] == 1

    def test_warm_resubmit_is_fully_cached(self, tmp_path):
        server, handle = start_server(tmp_path)
        try:
            client = ServeClient(host=handle.host, port=handle.port)
            client.submit(["baseline", "dlvp"], ["gzip"],
                          n_instructions=N, tenant="alice")
            warm = client.submit(["baseline", "dlvp"], ["gzip"],
                                 n_instructions=N, tenant="bob")
            assert warm.complete
            assert warm.summary["cached"] == 2
            assert warm.summary["executed"] == 0
            assert all(c.cache_hit for c in warm.cells.values())
        finally:
            handle.stop()
        assert sum(started_counts(farm_journal(tmp_path)).values()) == 2

    def test_results_identical_to_local_execution(self, tmp_path):
        from repro.pipeline import DlvpScheme, simulate
        from repro.workloads import build_workload

        server, handle = start_server(tmp_path)
        try:
            client = ServeClient(host=handle.host, port=handle.port)
            response = client.submit(["dlvp"], ["gzip"], n_instructions=N)
        finally:
            handle.stop()
        local = simulate(build_workload("gzip", N), scheme=DlvpScheme())
        assert response.result("dlvp", "gzip") == local


class TestDedup:
    def test_concurrent_overlapping_submissions_execute_once(self, tmp_path):
        server, handle = start_server(tmp_path, fault_spec="slow@*/*=0.2")
        try:
            client = ServeClient(host=handle.host, port=handle.port)
            grid = dict(schemes=["baseline", "dlvp"],
                        workloads=["gzip", "nat"], n_instructions=N)
            responses = {}

            def submit(tenant, delay):
                time.sleep(delay)
                responses[tenant] = client.submit(tenant=tenant, **grid)

            threads = [
                threading.Thread(target=submit, args=("alice", 0.0)),
                threading.Thread(target=submit, args=("bob", 0.05)),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            handle.stop()
        assert responses["alice"].complete and responses["bob"].complete
        # the farm's core claim: 8 requested cells, 4 unique, each
        # simulated exactly once
        started = started_counts(farm_journal(tmp_path))
        assert len(started) == 4
        assert all(count == 1 for count in started.values()), started
        overlap = sum(
            r.summary["shared"] + r.summary["cached"]
            for r in responses.values()
        )
        assert overlap == 4

    def test_shared_cells_are_flagged_to_the_joining_client(self, tmp_path):
        server, handle = start_server(tmp_path, fault_spec="slow@*/*=0.3")
        try:
            client = ServeClient(host=handle.host, port=handle.port)
            first = {}
            thread = threading.Thread(
                target=lambda: first.update(
                    r=client.submit(["dlvp"], ["gzip"], n_instructions=N,
                                    tenant="alice")
                )
            )
            thread.start()
            time.sleep(0.1)          # alice's cell is now in flight
            second = client.submit(["dlvp"], ["gzip"], n_instructions=N,
                                   tenant="bob")
            thread.join()
        finally:
            handle.stop()
        assert second.summary["shared"] == 1
        assert second.cells[("dlvp", "gzip")].shared


class TestFairness:
    def test_flood_does_not_starve_other_tenant(self, tmp_path):
        server, handle = start_server(
            tmp_path, workers=1, fault_spec="slow@*/*=0.1",
        )
        try:
            client = ServeClient(host=handle.host, port=handle.port)
            responses = {}

            def flood():
                responses["flood"] = client.submit(
                    ["baseline", "dlvp"], ["gzip", "nat"],
                    n_instructions=N, tenant="flood",
                )

            thread = threading.Thread(target=flood)
            thread.start()
            time.sleep(0.05)         # flood admitted, worker busy
            responses["small"] = client.submit(
                ["vtage"], ["gzip"], n_instructions=N, tenant="small",
            )
            thread.join()
        finally:
            handle.stop()
        assert responses["small"].complete and responses["flood"].complete
        events = farm_journal(tmp_path)
        small_key = responses["small"].cells[("vtage", "gzip")].key
        # round-robin across *dispatches*: the single-cell tenant goes
        # out well before the flooding tenant's backlog drains (never
        # later than the dispatch after the flood's in-flight one).  A
        # dispatch is one lease grant — either a trace group (announced
        # by group_dispatched, covering its next `cells` job_started
        # lines) or a lone cell's job_started.
        dispatch = 0
        small_dispatch = None
        grouped_left = 0
        for event in events:
            if event["event"] == "group_dispatched":
                dispatch += 1
                grouped_left = event["cells"]
            elif event["event"] == "job_started":
                if grouped_left > 0:
                    grouped_left -= 1
                else:
                    dispatch += 1
                if event["key"] == small_key and small_dispatch is None:
                    small_dispatch = dispatch
        assert small_dispatch is not None and small_dispatch <= 3, events

    def test_tenant_queue_bound_rejects_whole_submission(self, tmp_path):
        server, handle = start_server(
            tmp_path, workers=1, max_pending_per_tenant=1,
            fault_spec="slow@*/*=0.2",
        )
        try:
            client = ServeClient(host=handle.host, port=handle.port)
            with pytest.raises(ServeError, match="queue is full"):
                client.submit(["baseline", "dlvp", "vtage"], ["gzip"],
                              n_instructions=N, tenant="greedy")
        finally:
            handle.stop()
        events = farm_journal(tmp_path)
        kinds = Counter(e["event"] for e in events)
        assert kinds["submit_rejected"] == 1
        # all-or-nothing admission: nothing from the rejected grid ran
        assert kinds.get("job_started", 0) == 0


class TestGroupDispatch:
    def test_same_trace_cells_dispatch_as_one_group(self, tmp_path):
        """One lease carries the whole same-trace scheme family."""
        server, handle = start_server(tmp_path, workers=1)
        try:
            client = ServeClient(host=handle.host, port=handle.port)
            response = client.submit(
                ["baseline", "dlvp", "cap"], ["gzip"], n_instructions=N,
                tenant="alice",
            )
            assert response.complete
            assert response.summary["failed"] == 0
            for scheme in ("baseline", "dlvp", "cap"):
                assert response.result(scheme, "gzip").instructions > 0
        finally:
            handle.stop()
        events = farm_journal(tmp_path)
        groups = [e for e in events if e["event"] == "group_dispatched"]
        assert groups, "same-trace cells must ride one dispatch"
        assert groups[0]["workload"] == "gzip"
        assert groups[0]["cells"] == 3
        assert sorted(groups[0]["schemes"]) == ["baseline", "cap", "dlvp"]
        # exactly-once still holds cell by cell
        assert set(started_counts(events).values()) == {1}

    def test_group_cells_one_disables_grouping(self, tmp_path):
        server, handle = start_server(tmp_path, workers=1, group_cells=1)
        try:
            client = ServeClient(host=handle.host, port=handle.port)
            response = client.submit(
                ["baseline", "dlvp"], ["gzip"], n_instructions=N,
                tenant="alice",
            )
            assert response.complete
        finally:
            handle.stop()
        events = farm_journal(tmp_path)
        assert not [e for e in events if e["event"] == "group_dispatched"]


class TestFaultMasking:
    def test_worker_crash_is_retried_invisibly(self, tmp_path):
        server, handle = start_server(tmp_path,
                                      fault_spec="crash@gzip/dlvp:1")
        try:
            client = ServeClient(host=handle.host, port=handle.port)
            response = client.submit(["dlvp"], ["gzip"], n_instructions=N)
        finally:
            handle.stop()
        cell = response.cells[("dlvp", "gzip")]
        assert cell.ok and cell.error is None
        assert cell.attempts == 2      # crash, then clean retry
        finished = [e for e in farm_journal(tmp_path)
                    if e["event"] == "job_finished"]
        assert len(finished) == 1 and finished[0]["status"] == "ok"

    def test_exhausted_retries_fail_only_that_cell(self, tmp_path):
        server, handle = start_server(tmp_path, fault_spec="crash@gzip/dlvp")
        try:
            client = ServeClient(host=handle.host, port=handle.port)
            response = client.submit(["baseline", "dlvp"], ["gzip"],
                                     n_instructions=N)
        finally:
            handle.stop()
        assert not response.complete
        assert response.summary["failed"] == 1
        assert response.cells[("baseline", "gzip")].ok
        bad = response.cells[("dlvp", "gzip")]
        assert bad.status == "error" and "died" in bad.error


class TestEndToEnd:
    def test_two_clients_crash_fault_exactly_once_per_cell(self, tmp_path):
        """The acceptance demo: 2 workers, two concurrent clients with
        overlapping 3-scheme x 2-workload grids, a fault-injected
        worker crash mid-grid — every unique cell simulates exactly
        once (the crashed attempt retried), both clients get complete
        results and streamed progress, neither sees an error."""
        server, handle = start_server(tmp_path, workers=2,
                                      fault_spec="crash@gzip/dlvp:1")
        try:
            client = ServeClient(host=handle.host, port=handle.port)
            grids = {
                "alice": (["baseline", "dlvp", "vtage"], ["gzip", "nat"]),
                "bob": (["dlvp", "vtage"], ["gzip", "nat"]),
            }
            responses, progress = {}, {}

            def submit(tenant):
                schemes, workloads = grids[tenant]
                seen = []
                responses[tenant] = client.submit(
                    schemes, workloads, n_instructions=N, tenant=tenant,
                    on_event=seen.append,
                )
                progress[tenant] = seen

            threads = [threading.Thread(target=submit, args=(t,))
                       for t in grids]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            handle.stop()
        for tenant, (schemes, workloads) in grids.items():
            response = responses[tenant]
            assert response.complete, response.failures()
            assert set(response.cells) == {
                (s, w) for s in schemes for w in workloads
            }
            assert progress[tenant], f"{tenant} saw no streamed events"
        finished = [e for e in farm_journal(tmp_path)
                    if e["event"] == "job_finished"]
        per_key = Counter(e["key"] for e in finished)
        assert len(per_key) == 6                        # unique cells
        assert all(count == 1 for count in per_key.values()), per_key
        assert all(e["status"] == "ok" for e in finished)
        crashed = [e for e in finished if e["scheme"] == "dlvp"
                   and e["workload"] == "gzip"]
        assert crashed[0]["attempts"] == 2              # the masked crash


class TestGracefulShutdown:
    def test_drain_notifies_watchers_and_settles_pending(self, tmp_path):
        server, handle = start_server(
            tmp_path, workers=1, fault_spec="slow@*/*=0.5", grace=0.2,
        )
        watched: list[dict] = []
        terminal: dict = {}
        try:
            client = ServeClient(host=handle.host, port=handle.port)
            watcher = threading.Thread(
                target=lambda: terminal.update(
                    client.watch(watched.append)
                )
            )
            watcher.start()
            responses = {}
            submitter = threading.Thread(
                target=lambda: responses.update(
                    r=client.submit(["baseline", "dlvp"], ["gzip"],
                                    n_instructions=N, tenant="alice")
                )
            )
            submitter.start()
            time.sleep(0.2)          # first cell in flight, second queued
            client.shutdown()
            submitter.join(timeout=30)
            watcher.join(timeout=30)
        finally:
            handle.stop()
        assert not submitter.is_alive() and not watcher.is_alive()
        # the submitter got a terminal line for every cell, not an error
        response = responses["r"]
        assert len(response.cells) == 2
        assert response.summary["interrupted"] >= 1
        statuses = {c.status for c in response.cells.values()}
        assert statuses <= {"ok", "interrupted"}
        # the watcher got the terminal event, then a clean hangup
        assert terminal["type"] == "server_shutdown"
        assert watched, "watcher saw no journal events"
        # advertisement withdrawn
        assert not (tmp_path / "cache" / "serve.addr").exists()

    def test_new_submissions_rejected_while_draining(self, tmp_path):
        server, handle = start_server(
            tmp_path, workers=1, fault_spec="slow@*/*=0.6", grace=2.0,
        )
        try:
            client = ServeClient(host=handle.host, port=handle.port)
            background = threading.Thread(
                target=lambda: client.submit(["baseline"], ["gzip"],
                                             n_instructions=N)
            )
            background.start()
            time.sleep(0.2)
            client.shutdown()
            with pytest.raises(ServeError, match="shutting down"):
                client.submit(["dlvp"], ["nat"], n_instructions=N)
            background.join(timeout=30)
        finally:
            handle.stop()


class TestProtocolEdges:
    def test_unknown_scheme_rejected(self, tmp_path):
        server, handle = start_server(tmp_path)
        try:
            client = ServeClient(host=handle.host, port=handle.port)
            with pytest.raises(ServeError, match="unknown scheme"):
                client.submit(["definitely-not-a-scheme"], ["gzip"])
        finally:
            handle.stop()

    def test_garbage_line_gets_error_response(self, tmp_path):
        import socket

        server, handle = start_server(tmp_path)
        try:
            with socket.create_connection(
                (handle.host, handle.port), timeout=5
            ) as sock:
                sock.sendall(b"{ not json\n")
                reply = json.loads(sock.makefile("rb").readline())
            assert reply["type"] == "error"
        finally:
            handle.stop()

    def test_ping_and_status(self, tmp_path):
        server, handle = start_server(tmp_path)
        try:
            client = ServeClient(host=handle.host, port=handle.port)
            pong = client.ping()
            assert pong["type"] == "pong" and pong["version"] == 2
            status = client.status()
            for field in ("workers", "busy", "queued", "inflight",
                          "uptime_s", "cache", "counters"):
                assert field in status, field
            assert status["workers"] == 2
        finally:
            handle.stop()

    def test_cache_ops_over_the_wire(self, tmp_path):
        server, handle = start_server(tmp_path)
        try:
            client = ServeClient(host=handle.host, port=handle.port)
            client.submit(["baseline"], ["gzip"], n_instructions=N)
            verify = client.cache("verify")
            assert verify["type"] == "cache_report"
            assert verify["ok"] == 1 and verify["corrupt"] == 0
            gc = client.cache("gc", max_age_days=0.0)
            assert gc["results_removed"] == 1
        finally:
            handle.stop()


class TestDiscoveryAndFallback:
    def test_addr_file_discovery(self, tmp_path):
        server, handle = start_server(tmp_path)
        try:
            # no host/port: resolved from <cache-dir>/serve.addr
            client = ServeClient(cache_dir=tmp_path / "cache")
            assert client.port == handle.port
            assert client.ping()["type"] == "pong"
        finally:
            handle.stop()

    def test_submit_or_local_falls_back_in_process(self, tmp_path):
        response = submit_or_local(
            ["baseline"], ["gzip"], n_instructions=N,
            host="127.0.0.1", port=1,          # nothing listens there
            cache_dir=tmp_path / "cache",
        )
        assert response.mode == "local"
        assert response.complete
        assert response.result("baseline", "gzip").trace_name == "gzip"

    def test_no_fallback_raises_unavailable(self, tmp_path):
        client = ServeClient(host="127.0.0.1", port=1)
        with pytest.raises(ServeUnavailable):
            client.ping()


class TestServeCli:
    def test_submit_falls_back_and_prints_summary(self, tmp_path, capsys):
        from repro.__main__ import main

        code = main([
            "serve", "submit", "--schemes", "baseline", "--workloads",
            "gzip", "--instructions", str(N), "--quiet",
            "--cache-dir", str(tmp_path / "cache"), "--port", "1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "[repro.serve] 1 cells:" in out
        assert "(local" in out

    def test_status_without_server_exits_2(self, tmp_path, capsys):
        from repro.__main__ import main

        code = main(["serve", "status", "--cache-dir",
                     str(tmp_path / "cache"), "--port", "1"])
        assert code == 2
        assert "no server" in capsys.readouterr().err

    def test_submit_against_real_server(self, tmp_path, capsys):
        from repro.__main__ import main

        server, handle = start_server(tmp_path)
        try:
            code = main([
                "serve", "submit", "--schemes", "baseline", "dlvp",
                "--workloads", "gzip", "--instructions", str(N), "--quiet",
                "--host", handle.host, "--port", str(handle.port),
            ])
        finally:
            handle.stop()
        out = capsys.readouterr().out
        assert code == 0
        assert "[repro.serve] 2 cells: 2 executed" in out
        assert "(served, tenant default" in out
