"""Golden lock on ``simulate()``'s exact outcomes.

The hot-path overhaul (incremental folded histories, the inlined
``simulate()`` fast paths, the hierarchy/scheme call trimming) is pure
optimization: it must never change a simulated outcome.  This suite
pins ``SimResult.to_dict()`` — cycles, flushes, misprediction counts,
hit rates, energy events, scheme stats — for one workload per suite
kernel under every registered scheme, against goldens generated from
the pre-optimization model.

A mismatch here means the fast path diverged from the reference
semantics.  Only regenerate after a *deliberate* model change::

    PYTHONPATH=src python tests/test_golden_simresults.py --regen
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.pipeline.core_model import simulate
from repro.runtime.registry import get_scheme
from repro.trace import ColumnarTrace
from repro.workloads import SUITE, build_workload

GOLDEN_PATH = Path(__file__).parent / "golden_simresults.json"
INSTRUCTIONS = 3_000
SCHEMES = ("baseline", "dlvp", "cap", "vtage", "dvtage", "tournament")

_TRACES: dict[tuple[str, str], object] = {}
_STORE = None
_HANDLES: list[object] = []


def _shared_trace(workload: str):
    """Publish the columnar trace and re-attach it through the fabric.

    The attached trace is memoryview-backed over the live segment, so
    this leg proves the zero-copy path — not a reconstruction of it.
    """
    global _STORE
    from repro.trace.share import TraceStore

    if _STORE is None:
        _STORE = TraceStore()
    ref = _STORE.publish(f"golden/{workload}", _trace(workload, "columnar"))
    handle = _STORE.attach(ref)
    _HANDLES.append(handle)
    return handle.trace


@pytest.fixture(scope="module", autouse=True)
def _fabric_cleanup():
    yield
    global _STORE
    for handle in _HANDLES:
        handle.close()
    _HANDLES.clear()
    if _STORE is not None:
        _STORE.close()
        _STORE = None


def kernel_representatives() -> list[tuple[str, str]]:
    """(kernel name, first workload using it) for every suite kernel."""
    reps: dict[str, str] = {}
    for spec in sorted(SUITE.values(), key=lambda s: s.name):
        reps.setdefault(spec.kernel.__name__, spec.name)
    return sorted(reps.items())


def _trace(workload: str, engine: str = "object"):
    key = (workload, engine)
    trace = _TRACES.get(key)
    if trace is None:
        if engine == "shared":
            trace = _shared_trace(workload)
        elif engine == "columnar":
            trace = ColumnarTrace.from_trace(_trace(workload))
        else:
            trace = build_workload(workload, INSTRUCTIONS)
        _TRACES[key] = trace
    return trace


def simulate_cell(workload: str, scheme_id: str, engine: str = "object") -> dict:
    scheme = get_scheme(scheme_id).build()
    return simulate(_trace(workload, engine), scheme).to_dict()


def _cells() -> list[tuple[str, str]]:
    return [
        (workload, scheme_id)
        for _, workload in kernel_representatives()
        for scheme_id in SCHEMES
    ]


@pytest.fixture(scope="module")
def goldens() -> dict:
    assert GOLDEN_PATH.exists(), (
        f"{GOLDEN_PATH} missing — regenerate with "
        f"`python {Path(__file__).name} --regen`"
    )
    return json.loads(GOLDEN_PATH.read_text())


def test_golden_covers_every_kernel(goldens):
    expected = {f"{w}/{s}" for w, s in _cells()}
    assert set(goldens["cells"]) == expected


@pytest.mark.parametrize("engine", ["object", "columnar", "shared"])
@pytest.mark.parametrize(
    "workload,scheme_id", _cells(), ids=lambda v: str(v)
)
def test_simresult_bit_identical(goldens, workload, scheme_id, engine):
    """All three trace engines must hit the same goldens bit for bit.

    The columnar leg is what licenses the struct-of-arrays fast loop in
    ``core_model`` (and the flattened scheme dispatch under it) to skip
    the object path entirely.  The shared leg simulates straight off a
    memoryview-backed trace attached from the shared-memory fabric,
    which is what licenses workers to attach instead of rebuilding.
    """
    golden = goldens["cells"][f"{workload}/{scheme_id}"]
    assert simulate_cell(workload, scheme_id, engine) == golden


def _regen() -> None:
    cells = {}
    for workload, scheme_id in _cells():
        cells[f"{workload}/{scheme_id}"] = simulate_cell(workload, scheme_id)
        print(f"  {workload}/{scheme_id}")
    GOLDEN_PATH.write_text(json.dumps(
        {"instructions": INSTRUCTIONS, "cells": cells},
        indent=1, sort_keys=True,
    ) + "\n")
    print(f"wrote {GOLDEN_PATH} ({len(cells)} cells)")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
