"""Tests for the out-of-order core timing model."""

import pytest

from repro.isa import Instruction, OpClass
from repro.pipeline import (
    CoreConfig,
    DlvpScheme,
    RecoveryMode,
    VtageScheme,
    simulate,
)
from repro.pipeline.core_model import _IssuePorts
from repro.trace import Trace
from repro.workloads import build_workload


def alu_chain(n, pc_base=0x1000, dep=True):
    """n serial (or independent) ALU ops."""
    insts = []
    for i in range(n):
        srcs = (1,) if dep else ()
        insts.append(Instruction(pc=pc_base + 4 * i, op=OpClass.ALU,
                                 srcs=srcs, dests=(1,) if dep else (2,),
                                 values=(i,)))
    return insts


class TestIssuePorts:
    def test_backfill_around_stalled_op(self):
        ports = _IssuePorts(1)
        late = ports.issue_at(100)
        early = ports.issue_at(5)
        assert late == 100
        assert early == 5          # younger ready op is not blocked

    def test_width_respected(self):
        ports = _IssuePorts(2)
        cycles = [ports.issue_at(10) for _ in range(5)]
        assert cycles == [10, 10, 11, 11, 12]


class TestBasicTiming:
    def test_empty_ish_trace(self):
        r = simulate(Trace("t", alu_chain(1)))
        assert r.cycles > 0
        assert r.instructions == 1

    def test_ipc_bounded_by_width(self):
        r = simulate(Trace("t", alu_chain(4000, dep=False)))
        assert r.ipc <= CoreConfig().fetch_width + 0.01

    def test_serial_chain_is_slower_than_parallel(self):
        serial = simulate(Trace("s", alu_chain(2000, dep=True)))
        parallel = simulate(Trace("p", alu_chain(2000, dep=False)))
        assert serial.cycles > parallel.cycles

    def test_div_chain_much_slower(self):
        divs = [Instruction(pc=0x1000 + 4 * i, op=OpClass.DIV, srcs=(1,),
                            dests=(1,), values=(0,)) for i in range(500)]
        alus = alu_chain(500, dep=True)
        assert simulate(Trace("d", divs)).cycles > 5 * simulate(Trace("a", alus)).cycles

    def test_more_instructions_more_cycles(self):
        short = simulate(Trace("s", alu_chain(500, dep=False)))
        long = simulate(Trace("l", alu_chain(5000, dep=False)))
        assert long.cycles > short.cycles

    def test_commit_width_bounds_cycles(self):
        r = simulate(Trace("t", alu_chain(4000, dep=False)))
        assert r.cycles >= 4000 // CoreConfig().commit_width


class TestMemoryTiming:
    def test_load_latency_on_critical_path(self):
        def trace_with_loads(n):
            insts = []
            for i in range(n):
                insts.append(Instruction(
                    pc=0x1000, op=OpClass.LOAD, srcs=(1,), dests=(1,),
                    mem_addr=0x100000 + (i % 64) * 2048, mem_size=8, values=(0,),
                ))
            return Trace("loads", insts)
        dependent = simulate(trace_with_loads(500))
        assert dependent.ipc < 1.0     # serial loads can't pipeline

    def test_store_load_forwarding(self):
        insts = []
        for i in range(200):
            insts.append(Instruction(pc=0x1000, op=OpClass.STORE,
                                     mem_addr=0x5000, mem_size=8, values=(i,)))
            insts.append(Instruction(pc=0x1004, op=OpClass.LOAD, dests=(1,),
                                     mem_addr=0x5000, mem_size=8, values=(i,)))
        r = simulate(Trace("fwd", insts))
        assert r.cycles > 0
        assert r.loads == 200

    def test_l1_hit_rate_reported(self):
        r = simulate(build_workload("gzip", 2000))
        assert 0.0 < r.l1d_hit_rate <= 1.0


class TestBranches:
    def test_random_branches_cost_cycles(self):
        import random
        rng = random.Random(1)
        def trace(predictable):
            insts = []
            for i in range(2000):
                taken = (i % 2 == 0) if predictable else rng.random() < 0.5
                insts.append(Instruction(pc=0x1000, op=OpClass.ALU, dests=(1,),
                                         values=(0,)))
                insts.append(Instruction(pc=0x1004, op=OpClass.BRANCH,
                                         taken=taken, target=0x1000))
            return Trace("b", insts)
        good = simulate(trace(True))
        bad = simulate(trace(False))
        assert bad.cycles > good.cycles
        assert bad.branch_mispredictions > good.branch_mispredictions

    def test_flush_stats_match_mispredictions(self):
        r = simulate(build_workload("perlbmk", 3000))
        assert r.flushes.branch == r.branch_mispredictions


class TestValuePredictionIntegration:
    def test_baseline_has_no_value_predictions(self):
        r = simulate(build_workload("perlbmk", 2000))
        assert r.value_predictions == 0
        assert r.scheme_name == "baseline"

    def test_dlvp_makes_predictions(self):
        r = simulate(build_workload("perlbmk", 4000), scheme=DlvpScheme())
        assert r.value_predictions > 0
        assert r.scheme_name == "dlvp"
        assert 0.0 < r.value_coverage < 1.0

    def test_dlvp_speeds_up_perlbmk(self):
        t = build_workload("perlbmk", 8000)
        base = simulate(t)
        d = simulate(t, scheme=DlvpScheme())
        assert d.speedup_over(base) > 0.10

    def test_correct_predictions_never_slow_down_much(self):
        t = build_workload("aifirf", 6000)
        base = simulate(t)
        d = simulate(t, scheme=DlvpScheme())
        assert d.speedup_over(base) > -0.02

    def test_oracle_replay_at_least_as_fast_as_flush(self):
        t = build_workload("gcc", 6000)
        flush = simulate(t, scheme=DlvpScheme(), recovery=RecoveryMode.FLUSH)
        replay = simulate(t, scheme=DlvpScheme(),
                          recovery=RecoveryMode.ORACLE_REPLAY)
        assert replay.cycles <= flush.cycles

    def test_oracle_replay_has_no_value_flushes(self):
        t = build_workload("gcc", 6000)
        replay = simulate(t, scheme=DlvpScheme(),
                          recovery=RecoveryMode.ORACLE_REPLAY)
        assert replay.flushes.value == 0

    def test_vtage_scheme_runs(self):
        r = simulate(build_workload("nat", 16000), scheme=VtageScheme())
        assert r.scheme_name == "vtage"
        assert r.value_predictions > 0

    def test_speedup_requires_same_trace(self):
        a = simulate(build_workload("gzip", 1000))
        b = simulate(build_workload("parser", 1000))
        with pytest.raises(ValueError, match="different traces"):
            b.speedup_over(a)

    def test_energy_events_populated(self):
        r = simulate(build_workload("perlbmk", 3000), scheme=DlvpScheme())
        assert r.energy.cycles == r.cycles
        assert r.energy.l1d_accesses > 0
        assert r.energy.l1d_probes > 0
        assert r.energy.predictor_bits > 0


class TestConfigValidation:
    def test_lane_sum_must_match_width(self):
        with pytest.raises(ValueError, match="lanes"):
            CoreConfig(ls_lanes=3, generic_lanes=6)

    def test_rename_before_execute(self):
        with pytest.raises(ValueError, match="rename"):
            CoreConfig(rename_depth=13)

    def test_positive_widths(self):
        with pytest.raises(ValueError, match="width"):
            CoreConfig(fetch_width=0)


class TestDeterminism:
    def test_same_run_same_cycles(self):
        t = build_workload("vortex", 3000)
        assert simulate(t, scheme=DlvpScheme()).cycles == \
            simulate(t, scheme=DlvpScheme()).cycles
