"""End-to-end semantics of DLVP's committed-state probing.

These tests construct hand-built traces and check the paper's central
mechanism inside the full pipeline: a probe sees committed stores (and
predicts correctly where a value table would be stale), but races
in-flight stores (and the LSCD then retires the load from the scheme).
"""

from repro.core.dlvp import DlvpStats
from repro.isa import OpClass
from repro.pipeline import DlvpScheme, simulate
from repro.workloads import WorkloadBuilder


def committed_conflict_trace(repeats=120, gap=240):
    """store X -> (long gap) -> load X, repeated with changing values."""
    b = WorkloadBuilder("committed", seed=1)
    for i in range(repeats):
        b.store(0x1000, addr=0x8000, value=i * 7919, size=8)
        for k in range(gap):
            b.alu(0x1100 + 4 * (k % 16), 2, srcs=(2,))
        b.load(0x2000, dests=(1,), addr=0x8000, size=8)
        for k in range(gap):
            b.alu(0x2100 + 4 * (k % 16), 3, srcs=(3,))
    return b.build()


def inflight_conflict_trace(repeats=120):
    """store X immediately followed by load X, repeated."""
    b = WorkloadBuilder("inflight", seed=1)
    for i in range(repeats):
        b.store(0x1000, addr=0x8000, value=i * 104729, size=8)
        b.alu(0x1004, 2, srcs=(2,))
        b.load(0x1008, dests=(1,), addr=0x8000, size=8)
        for k in range(12):
            b.alu(0x1100 + 4 * (k % 8), 3, srcs=(3,))
    return b.build()


class TestCommittedConflicts:
    def test_dlvp_predicts_through_committed_stores(self):
        """The headline mechanism: the value changes on every visit, but
        the changing store is long committed, so the probe returns the
        fresh value and predictions are correct."""
        result = simulate(committed_conflict_trace(), scheme=DlvpScheme())
        stats = result.scheme_stats
        assert isinstance(stats, DlvpStats)
        assert stats.value_predictions > 40
        assert stats.value_accuracy > 0.97
        assert result.flushes.value <= 2

    def test_lvp_would_mispredict_every_visit(self):
        """Contrast: a last-value predictor goes stale on every visit."""
        from repro.predictors import LastValuePredictor
        lvp = LastValuePredictor()
        for inst in committed_conflict_trace():
            if inst.op == OpClass.LOAD:
                lvp.train(inst)
        assert lvp.stats.accuracy < 0.1 or lvp.stats.predictions == 0


class TestInFlightConflicts:
    def test_probe_races_inflight_store(self):
        """With the store immediately preceding the load, the probe sees
        the *previous* committed value: the first consumed prediction is
        wrong, flushes, and the LSCD retires the load from the scheme."""
        result = simulate(inflight_conflict_trace(), scheme=DlvpScheme())
        stats = result.scheme_stats
        assert isinstance(stats, DlvpStats)
        assert stats.inflight_conflicts >= 1
        assert stats.lscd_blocked > 10
        # After LSCD capture, flushes stop: far fewer flushes than loads.
        assert result.flushes.value <= 3

    def test_without_lscd_flushes_repeat(self):
        from repro.core import DlvpConfig
        with_ = simulate(inflight_conflict_trace(),
                         scheme=DlvpScheme(DlvpConfig(lscd_entries=4)))
        without = simulate(inflight_conflict_trace(),
                           scheme=DlvpScheme(DlvpConfig(lscd_entries=0)))
        assert without.flushes.value > with_.flushes.value
        assert without.cycles >= with_.cycles


class TestWindowInteractions:
    def test_ldq_pressure_slows_fetch(self):
        """A load-only stream must respect LDQ occupancy."""
        from repro.pipeline import CoreConfig
        b = WorkloadBuilder("loads", seed=1)
        for i in range(1200):
            b.load(0x1000 + 4 * (i % 4), dests=(1,),
                   addr=0x10000 + (i % 128) * 8, size=8)
        trace = b.build()
        big = simulate(trace, core_config=CoreConfig(ldq_entries=72))
        tiny = simulate(trace, core_config=CoreConfig(ldq_entries=4))
        assert tiny.cycles >= big.cycles

    def test_rob_pressure_slows_fetch(self):
        from repro.pipeline import CoreConfig
        b = WorkloadBuilder("divs", seed=1)
        for i in range(800):
            b.alu(0x1000, 1, srcs=(1,), op=OpClass.DIV)
            for k in range(7):
                b.alu(0x1004 + 4 * k, 2 + (k % 4), srcs=())
        trace = b.build()
        big = simulate(trace, core_config=CoreConfig(rob_entries=224))
        tiny = simulate(trace, core_config=CoreConfig(rob_entries=16))
        assert tiny.cycles > big.cycles

    def test_pvt_capacity_limits_predictions(self):
        """With a 1-entry PVT, overlapping predictions get rejected."""
        trace = committed_conflict_trace(repeats=60, gap=240)
        rich = DlvpScheme()
        poor = DlvpScheme()
        poor.vpe.pvt.capacity = 1
        r_rich = simulate(trace, scheme=rich)
        r_poor = simulate(trace, scheme=poor)
        assert r_poor.value_predictions <= r_rich.value_predictions
