"""Unit tests for the instruction model."""

import pytest

from repro.isa import (
    EXECUTION_LATENCY,
    Instruction,
    OpClass,
    is_branch_op,
    is_memory_op,
)


def make_load(**kwargs):
    defaults = dict(pc=0x1000, op=OpClass.LOAD, dests=(1,), mem_addr=0x2000,
                    mem_size=8, values=(42,))
    defaults.update(kwargs)
    return Instruction(**defaults)


class TestOpClassification:
    def test_memory_ops(self):
        assert is_memory_op(OpClass.LOAD)
        assert is_memory_op(OpClass.STORE)
        assert is_memory_op(OpClass.ATOMIC)

    def test_non_memory_ops(self):
        assert not is_memory_op(OpClass.ALU)
        assert not is_memory_op(OpClass.BRANCH)
        assert not is_memory_op(OpClass.NOP)

    def test_branch_ops(self):
        for op in (OpClass.BRANCH, OpClass.JUMP, OpClass.CALL, OpClass.RETURN,
                   OpClass.INDIRECT):
            assert is_branch_op(op)

    def test_non_branch_ops(self):
        for op in (OpClass.ALU, OpClass.LOAD, OpClass.STORE, OpClass.BARRIER):
            assert not is_branch_op(op)

    def test_every_op_has_latency(self):
        for op in OpClass:
            assert EXECUTION_LATENCY[op] >= 1

    def test_div_slower_than_alu(self):
        assert EXECUTION_LATENCY[OpClass.DIV] > EXECUTION_LATENCY[OpClass.MUL] > \
            EXECUTION_LATENCY[OpClass.ALU]


class TestInstructionValidation:
    def test_load_requires_address(self):
        with pytest.raises(ValueError, match="memory address"):
            Instruction(pc=0, op=OpClass.LOAD, dests=(1,), values=(1,))

    def test_store_requires_address(self):
        with pytest.raises(ValueError, match="memory address"):
            Instruction(pc=0, op=OpClass.STORE, values=(1,))

    def test_load_values_match_dests(self):
        with pytest.raises(ValueError, match="one value per destination"):
            Instruction(pc=0, op=OpClass.LOAD, dests=(1, 2), mem_addr=0x100,
                        values=(5,))

    def test_valid_load(self):
        inst = make_load()
        assert inst.is_load
        assert not inst.is_store
        assert not inst.is_branch

    def test_valid_store(self):
        inst = Instruction(pc=0, op=OpClass.STORE, mem_addr=0x100, values=(7,))
        assert inst.is_store

    def test_branch_properties(self):
        inst = Instruction(pc=0, op=OpClass.BRANCH, taken=True, target=0x40)
        assert inst.is_branch
        assert inst.taken


class TestMultiDestination:
    def test_ldp_has_two_dests(self):
        inst = make_load(dests=(1, 2), values=(10, 20))
        assert inst.num_dests == 2
        assert inst.value_prediction_slots() == 2

    def test_ldm_slots(self):
        inst = make_load(dests=(1, 2, 3, 4), values=(1, 2, 3, 4))
        assert inst.value_prediction_slots() == 4

    def test_vector_load_doubles_slots(self):
        inst = make_load(dests=(1,), values=(1 << 100,), mem_size=16,
                         is_vector=True)
        assert inst.value_prediction_slots() == 2

    def test_loaded_addresses_consecutive(self):
        inst = make_load(dests=(1, 2, 3), values=(0, 0, 0), mem_addr=0x100,
                         mem_size=8)
        assert inst.loaded_addresses() == (0x100, 0x108, 0x110)

    def test_footprint_scales_with_dests(self):
        single = make_load()
        pair = make_load(dests=(1, 2), values=(0, 0))
        assert pair.footprint_bytes == 2 * single.footprint_bytes

    def test_store_footprint_is_size(self):
        inst = Instruction(pc=0, op=OpClass.STORE, mem_addr=0x100,
                           mem_size=16, values=(7,))
        assert inst.footprint_bytes == 16

    def test_non_memory_footprint_zero(self):
        inst = Instruction(pc=0, op=OpClass.ALU, dests=(1,), values=(3,))
        assert inst.footprint_bytes == 0
