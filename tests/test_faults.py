"""Chaos suite: deterministic fault injection against the runtime.

These tests *actually* kill workers, corrupt cache entries and deliver
SIGINT mid-run — proving the recovery claims in the executor and cache
docstrings rather than trusting them.  Everything is driven through
:mod:`repro.faults`, so each failure is injected deterministically and
the assertions are exact (which cell, which attempt, which journal
events) instead of probabilistic.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import warnings
from pathlib import Path

import pytest

from repro.faults import (
    FAULT_SPEC_ENV,
    FaultInjected,
    FaultPlan,
    FaultRule,
    active_plan,
    corrupt_file,
)
from repro.runtime import (
    ResultCache,
    RunJournal,
    Runtime,
    completed_results,
    make_job,
    read_journal,
)

WORKLOADS = ["gzip", "nat"]
N = 1_500
SRC = str(Path(__file__).resolve().parent.parent / "src")


def _subprocess_env(tmp_path, fault_spec=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    env.pop(FAULT_SPEC_ENV, None)
    if fault_spec:
        env[FAULT_SPEC_ENV] = fault_spec
    return env


class TestFaultPlan:
    def test_parse_spec_round_trip(self):
        spec = "seed=7;rate=0.5;crash@gzip/dlvp:1,3;slow@*/*=0.25"
        plan = FaultPlan.parse(spec)
        assert plan.seed == 7 and plan.rate == 0.5
        assert plan.rules[0] == FaultRule(
            "crash", "gzip", "dlvp", attempts=(1, 3)
        )
        assert plan.rules[1].kind == "slow"
        assert plan.rules[1].seconds == 0.25
        assert FaultPlan.parse(plan.spec()) == plan

    def test_rule_matching(self):
        rule = FaultRule("raise", "g*", "dlvp", attempts=(2,))
        assert rule.matches("gzip", "dlvp", 2)
        assert not rule.matches("gzip", "dlvp", 1)      # wrong attempt
        assert not rule.matches("nat", "dlvp", 2)       # wrong workload
        assert not rule.matches("gzip", "vtage", 2)     # wrong scheme

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.parse("explode@*/*")

    def test_seeded_rate_is_deterministic_and_selective(self):
        plan = FaultPlan.parse("rate=0.5;seed=3;raise@*/*")
        keys = [f"{i:064x}" for i in range(200)]
        first = [plan.selects(k) for k in keys]
        assert first == [plan.selects(k) for k in keys]      # deterministic
        assert 40 < sum(first) < 160                         # actually samples
        other = FaultPlan.parse("rate=0.5;seed=4;raise@*/*")
        assert first != [other.selects(k) for k in keys]     # seed matters

    def test_active_plan_reads_environment(self, monkeypatch):
        monkeypatch.delenv(FAULT_SPEC_ENV, raising=False)
        assert active_plan() is None
        monkeypatch.setenv(FAULT_SPEC_ENV, "raise@gzip/*")
        plan = active_plan()
        assert plan is not None and plan.rules[0].kind == "raise"
        assert active_plan("crash@*/*").rules[0].kind == "crash"


class TestInjectedFailures:
    def test_raise_fault_recovers_on_retry(self):
        runtime = Runtime(jobs=1, use_cache=False, retries=1,
                          faults="raise@gzip/dlvp:1")
        outcomes = runtime.run_jobs([make_job("gzip", N, "dlvp")])
        (outcome,) = outcomes.values()
        assert outcome.status == "ok"
        assert outcome.attempts == 2        # first attempt raised, retry won

    def test_raise_fault_exhausts_bounded_retries(self):
        runtime = Runtime(jobs=1, use_cache=False, retries=1,
                          faults="raise@gzip/dlvp")
        outcomes = runtime.run_jobs([make_job("gzip", N, "dlvp")])
        (outcome,) = outcomes.values()
        assert outcome.status == "error"
        assert outcome.attempts == 2
        assert "injected fault" in outcome.error

    def test_raise_fault_raises_fault_injected(self):
        from repro.runtime import execute_job
        with pytest.raises(FaultInjected):
            execute_job(make_job("gzip", N, "dlvp"), attempt=1,
                        fault_spec="raise@gzip/*")

    def test_slow_fault_still_succeeds(self):
        runtime = Runtime(jobs=1, use_cache=False,
                          faults="slow@gzip/baseline=0.05")
        started = time.monotonic()
        outcomes = runtime.run_jobs([make_job("gzip", N, "baseline")])
        (outcome,) = outcomes.values()
        assert outcome.status == "ok"
        assert time.monotonic() - started >= 0.05

    def test_hang_fault_hits_timeout(self):
        runtime = Runtime(jobs=1, use_cache=False, timeout=0.5,
                          faults="hang@gzip/baseline")
        outcomes = runtime.run_jobs([make_job("gzip", N, "baseline",
                                              timeout=0.5)])
        (outcome,) = outcomes.values()
        assert outcome.status == "timeout"

    def test_timeout_escalation_recovers_slow_job(self):
        # attempt 1: 0.4s budget < 1s injected delay -> timeout;
        # attempt 2: budget escalates x10 -> the job fits and succeeds
        runtime = Runtime(jobs=1, use_cache=False, retries=1,
                          timeout_factor=10.0,
                          faults="slow@gzip/baseline=1.0")
        outcomes = runtime.run_jobs([make_job("gzip", N, "baseline",
                                              timeout=0.4)])
        (outcome,) = outcomes.values()
        assert outcome.status == "ok"
        assert outcome.attempts == 2

    def test_retry_backoff_is_applied(self):
        runtime = Runtime(jobs=1, use_cache=False, retries=1, backoff=0.2,
                          faults="raise@gzip/dlvp:1")
        started = time.monotonic()
        outcomes = runtime.run_jobs([make_job("gzip", N, "dlvp")])
        (outcome,) = outcomes.values()
        assert outcome.status == "ok"
        assert time.monotonic() - started >= 0.2   # backoff before attempt 2


class TestWorkerKillIsolation:
    def test_crash_fault_breaks_exactly_one_cell(self):
        """Acceptance: a killed worker yields one error cell, rest ok."""
        runtime = Runtime(jobs=2, use_cache=False, retries=1,
                          faults="crash@gzip/dlvp")
        grid = runtime.run_grid(["baseline", "dlvp"], WORKLOADS, N)
        statuses = {
            cell: outcome.status for cell, outcome in grid.cells.items()
        }
        assert statuses[("dlvp", "gzip")] == "error"
        assert "worker process died" in grid.outcome("dlvp", "gzip").error
        others = [s for cell, s in statuses.items() if cell != ("dlvp", "gzip")]
        assert others == ["ok"] * 3

    def test_crash_on_first_attempt_only_recovers(self):
        runtime = Runtime(jobs=2, use_cache=False, retries=1,
                          faults="crash@gzip/dlvp:1")
        grid = runtime.run_grid(["baseline", "dlvp"], ["gzip"], N)
        outcome = grid.outcome("dlvp", "gzip")
        assert outcome.status == "ok"
        assert outcome.attempts == 2


class TestCacheIntegrity:
    def test_checksum_failure_quarantines_and_journals(self, tmp_path):
        first = Runtime(jobs=1, cache_dir=tmp_path)
        grid = first.run_grid(["baseline"], ["gzip"], N)
        expected = grid.result("baseline", "gzip")
        key = grid.outcome("baseline", "gzip").job.key
        corrupt_file(first.cache.result_path(key))

        second = Runtime(jobs=1, cache_dir=tmp_path)
        grid2 = second.run_grid(["baseline"], ["gzip"], N)
        assert second.journal.count("cache_corrupt") == 1
        corrupt_event = next(e for e in second.journal.events
                             if e["event"] == "cache_corrupt")
        assert corrupt_event["key"] == key
        quarantined = tmp_path / "corrupt" / f"{key}.json"
        assert quarantined.is_file()               # moved, not overwritten
        assert second.journal.summary()["executed"] == 1   # re-ran the cell
        assert grid2.result("baseline", "gzip") == expected

        third = Runtime(jobs=1, cache_dir=tmp_path)
        third.run_grid(["baseline"], ["gzip"], N)
        assert third.journal.summary()["cache_hits"] == 1  # healed

    def test_corrupt_cache_fault_injects_torn_write(self, tmp_path):
        runtime = Runtime(jobs=1, cache_dir=tmp_path,
                          faults="corrupt_cache@gzip/baseline")
        grid = runtime.run_grid(["baseline"], ["gzip"], N)
        assert runtime.journal.count("fault_injected", fault="corrupt_cache") == 1
        key = grid.outcome("baseline", "gzip").job.key
        assert runtime.cache.get(key) is None      # quarantined on read
        assert (tmp_path / "corrupt" / f"{key}.json").is_file()

    def test_contains_is_schema_check_without_deserializing(self, tmp_path):
        runtime = Runtime(jobs=1, cache_dir=tmp_path)
        grid = runtime.run_grid(["baseline"], ["gzip"], N)
        key = grid.outcome("baseline", "gzip").job.key
        cache = ResultCache(tmp_path)
        assert cache.contains(key)
        assert not cache.contains("0" * 64)
        path = cache.result_path(key)
        payload = json.loads(path.read_text())
        payload["cache_schema"] = 999
        path.write_text(json.dumps(payload))
        assert not cache.contains(key)             # stale schema
        assert path.is_file()                      # contains never quarantines

    def test_verify_counts_and_quarantines(self, tmp_path):
        runtime = Runtime(jobs=1, cache_dir=tmp_path)
        grid = runtime.run_grid(["baseline", "dlvp"], ["gzip"], N)
        key = grid.outcome("dlvp", "gzip").job.key
        corrupt_file(runtime.cache.result_path(key))
        report = ResultCache(tmp_path).verify()
        assert report["results"] == 2
        assert report["ok"] == 1
        assert report["corrupt"] == 1
        assert (tmp_path / "corrupt" / f"{key}.json").is_file()

    def test_gc_prunes_by_age_and_size(self, tmp_path):
        runtime = Runtime(jobs=1, cache_dir=tmp_path)
        runtime.run_grid(["baseline", "dlvp"], WORKLOADS, N)
        cache = ResultCache(tmp_path)
        untouched = cache.gc()
        assert untouched["removed"] == 0 and untouched["kept"] > 0
        shrunk = cache.gc(max_size_mb=0.001)       # ~1KB: traces must go
        assert shrunk["removed"] > 0
        emptied = cache.gc(max_age_days=0.0)
        assert emptied["kept"] == 0
        assert cache.gc()["kept"] == 0


class TestJournalDurability:
    def test_every_event_carries_run_id(self, tmp_path):
        runtime = Runtime(jobs=1, use_cache=False,
                          journal_path=tmp_path / "j.jsonl")
        runtime.run_jobs([make_job("gzip", N, "baseline")])
        events = read_journal(tmp_path / "j.jsonl")
        assert events
        assert all(e["run_id"] == runtime.journal.run_id for e in events)

    def test_journal_appends_across_runs(self, tmp_path):
        path = tmp_path / "j.jsonl"
        for _ in range(2):
            journal = RunJournal(path)
            journal.event("run_started", jobs=0)
            journal.close()
        events = read_journal(path)
        assert len(events) == 2
        assert events[0]["run_id"] != events[1]["run_id"]

    def test_torn_final_line_tolerated_with_warning(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            json.dumps({"event": "run_started", "run_id": "x"}) + "\n"
            + '{"event": "job_finished", "stat'      # crashed mid-write
        )
        with pytest.warns(RuntimeWarning, match="torn final line"):
            events = read_journal(path)
        assert [e["event"] for e in events] == ["run_started"]

    def test_mid_file_corruption_raises_with_line_number(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            json.dumps({"event": "a"}) + "\n"
            + "garbage\n"
            + json.dumps({"event": "b"}) + "\n"
        )
        with pytest.raises(ValueError, match=r"line .*:2"):
            read_journal(path)

    def test_completed_results_indexes_ok_finishes(self):
        events = [
            {"event": "job_finished", "status": "ok", "key": "a",
             "result": {"x": 1}},
            {"event": "job_finished", "status": "error", "key": "b",
             "error": "boom"},
            {"event": "job_finished", "status": "ok", "key": "a",
             "result": {"x": 2}},          # latest finish wins
        ]
        assert completed_results(events) == {"a": {"x": 2}}


class TestResume:
    def test_resume_skips_completed_jobs_without_cache(self, tmp_path):
        path = tmp_path / "j.jsonl"
        first = Runtime(jobs=1, use_cache=False, journal_path=path)
        grid = first.run_grid(["baseline", "dlvp"], ["gzip"], N)
        first.journal.close()

        second = Runtime(jobs=1, use_cache=False, resume_from=path)
        grid2 = second.run_grid(["baseline", "dlvp"], ["gzip"], N)
        summary = second.journal.summary()
        assert summary["resumed"] == 2
        assert summary["executed"] == 0
        assert second.journal.count("job_started") == 0
        for scheme in ("baseline", "dlvp"):
            assert grid2.result(scheme, "gzip") == grid.result(scheme, "gzip")
            assert grid2.outcome(scheme, "gzip").resumed

    def test_resume_runs_only_what_the_journal_lacks(self, tmp_path):
        path = tmp_path / "j.jsonl"
        first = Runtime(jobs=1, use_cache=False, journal_path=path)
        first.run_grid(["baseline"], ["gzip"], N)
        first.journal.close()
        second = Runtime(jobs=1, use_cache=False, resume_from=path)
        second.run_grid(["baseline", "dlvp"], ["gzip"], N)
        summary = second.journal.summary()
        assert summary["resumed"] == 1
        assert summary["executed"] == 1    # only the new dlvp cell ran


class TestGracefulInterruption:
    def test_sigint_returns_partial_results(self, tmp_path):
        """SIGINT mid-run: completed cells survive (and are cached)."""
        runtime = Runtime(jobs=1, cache_dir=tmp_path,
                          journal_path=tmp_path / "j.jsonl",
                          faults="hang@nat/baseline")
        timer = threading.Timer(
            1.5, lambda: os.kill(os.getpid(), signal.SIGINT)
        )
        timer.start()
        try:
            grid = runtime.run_grid(["baseline"], ["gzip", "nat"], N)
        finally:
            timer.cancel()
        assert grid.outcome("baseline", "gzip").status == "ok"
        assert grid.outcome("baseline", "nat").status == "interrupted"
        assert not grid.complete
        assert runtime.journal.count("run_interrupted") == 1
        assert "1/2 cells completed" in grid.partial_report()
        # the finished cell is already cached for the relaunch
        key = grid.outcome("baseline", "gzip").job.key
        assert ResultCache(tmp_path).contains(key)

    def test_cli_sigint_then_resume_reexecutes_nothing(self, tmp_path):
        """Acceptance: interrupted sweep + --resume re-runs zero done jobs."""
        journal = tmp_path / "sweep.jsonl"
        cmd = [
            sys.executable, "-m", "repro", "sweep", "--schemes", "dlvp",
            "--workloads", "gzip", "nat", "--instructions", str(N),
            "--no-cache", "--journal", str(journal),
        ]
        proc = subprocess.Popen(
            cmd, env=_subprocess_env(tmp_path, "hang@nat/dlvp"),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                pytest.fail(
                    f"sweep exited early ({proc.returncode}): "
                    f"{proc.communicate()[1]}"
                )
            if journal.is_file() and journal.read_text().count(
                '"job_finished"'
            ) >= 3:
                break               # everything but the hung cell is done
            time.sleep(0.1)
        else:
            proc.kill()
            pytest.fail("sweep never reached the hung cell")
        proc.send_signal(signal.SIGINT)
        _, err = proc.communicate(timeout=60)
        assert proc.returncode == 130
        assert "run interrupted" in err
        assert "--resume" in err

        first_events = read_journal(journal)
        done_first = {
            e["key"] for e in first_events
            if e["event"] == "job_finished" and e["status"] == "ok"
        }
        assert len(done_first) == 3

        resumed = subprocess.run(
            cmd + ["--resume", str(journal)],
            env=_subprocess_env(tmp_path),    # fault cleared: cell completes
            capture_output=True, text=True, timeout=120,
        )
        assert resumed.returncode == 0, resumed.stderr
        events = read_journal(journal)
        second_id = events[-1]["run_id"]
        second = [e for e in events if e["run_id"] == second_id]
        started = [e for e in second if e["event"] == "job_started"]
        # zero completed jobs re-executed: only the hung cell starts
        assert len(started) == 1
        assert started[0]["key"] not in done_first
        assert sum(e["event"] == "job_resumed" for e in second) == 3


class TestTimeoutDegradationWarning:
    def test_warns_once_when_sigalrm_unusable(self, monkeypatch):
        import repro.runtime.executor as executor_module
        monkeypatch.setattr(executor_module, "_timeout_degraded_warned", False)
        caught: list[warnings.WarningMessage] = []

        def call_twice_off_main_thread():
            with warnings.catch_warnings(record=True) as log:
                warnings.simplefilter("always")
                assert executor_module._call_with_timeout(lambda: 42, 1.0) == 42
                assert executor_module._call_with_timeout(lambda: 43, 1.0) == 43
                caught.extend(log)

        thread = threading.Thread(target=call_twice_off_main_thread)
        thread.start()
        thread.join()
        degraded = [w for w in caught
                    if issubclass(w.category, RuntimeWarning)]
        assert len(degraded) == 1              # one-time, not per call
        assert "unbounded" in str(degraded[0].message)

    def test_no_warning_without_timeout(self, monkeypatch):
        import repro.runtime.executor as executor_module
        monkeypatch.setattr(executor_module, "_timeout_degraded_warned", False)
        caught: list[warnings.WarningMessage] = []

        def call():
            with warnings.catch_warnings(record=True) as log:
                warnings.simplefilter("always")
                executor_module._call_with_timeout(lambda: 1, None)
                caught.extend(log)

        thread = threading.Thread(target=call)
        thread.start()
        thread.join()
        assert not caught


class TestChaosCli:
    def test_chaos_command_reports_recovery(self, tmp_path, capsys,
                                            monkeypatch):
        from repro.__main__ import main
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.delenv(FAULT_SPEC_ENV, raising=False)
        code = main([
            "chaos", "--fault", "crash@gzip/dlvp", "--schemes", "baseline",
            "dlvp", "--workloads", "gzip", "nat",
            "--instructions", str(N), "--jobs", "2",
        ])
        assert code == 0
        out, err = capsys.readouterr()
        assert "worker process died" in out
        assert "3 ok, 1 error" in err

    def test_chaos_without_plan_is_an_error(self, capsys, monkeypatch):
        from repro.__main__ import main
        monkeypatch.delenv(FAULT_SPEC_ENV, raising=False)
        assert main(["chaos"]) == 2
        assert "no fault plan" in capsys.readouterr().err

    def test_cache_verify_and_gc_commands(self, tmp_path, capsys,
                                          monkeypatch):
        from repro.__main__ import main
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.delenv(FAULT_SPEC_ENV, raising=False)
        assert main(["run", "gzip", "--instructions", str(N)]) == 0
        capsys.readouterr()
        assert main(["cache", "verify"]) == 0
        assert " ok, " in capsys.readouterr().out
        assert main(["cache", "gc", "--max-age-days", "0"]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "verify"]) == 0
        assert "0 results" in capsys.readouterr().out
