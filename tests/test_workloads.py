"""Tests for the workload suite and its generators."""

import pytest

from repro.isa import OpClass
from repro.memory import MemoryImage
from repro.workloads import (
    PAPER_GROUPS,
    SUITE,
    SUITE_GROUPS,
    build_suite,
    build_workload,
    workload_names,
)


class TestSuiteRegistry:
    def test_registry_size(self):
        # 78 paper benchmarks + the adversarial stress workloads
        assert len(SUITE) == 80
        assert len(workload_names()) == 78

    def test_groups_cover_paper_suites(self):
        assert set(SUITE_GROUPS) == {
            "spec2k", "spec2k6", "eembc", "other", "adversarial",
        }
        assert set(PAPER_GROUPS) == set(SUITE_GROUPS) - {"adversarial"}

    def test_default_names_exclude_adversarial(self):
        default = set(workload_names())
        assert "storeflood" not in default
        assert set(workload_names("adversarial")) == {
            "storeflood", "storeflood_lite",
        }
        assert default | set(workload_names("adversarial")) == set(SUITE)

    def test_paper_headliners_present(self):
        for name in ("perlbmk", "nat", "aifirf", "bzip2", "pdfjs", "gcc",
                     "soplex", "avmshell", "h264ref"):
            assert name in SUITE

    def test_workload_names_filtering(self):
        assert len(workload_names("eembc")) == 30
        assert set(workload_names("eembc")) <= set(workload_names())

    def test_unknown_group_raises(self):
        with pytest.raises(KeyError):
            workload_names("bogus")

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError, match="unknown workload"):
            build_workload("nope")


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = build_workload("gzip", 2000)
        b = build_workload("gzip", 2000)
        assert a.instructions == b.instructions

    def test_different_workloads_differ(self):
        a = build_workload("gzip", 2000)
        b = build_workload("parser", 2000)
        assert a.instructions != b.instructions

    def test_build_suite_subset(self):
        traces = build_suite(500, names=["gzip", "nat"])
        assert set(traces) == {"gzip", "nat"}


class TestBudget:
    @pytest.mark.parametrize("name", ["perlbmk", "mcf", "nat", "h264ref",
                                      "sunspider", "linpack", "tblook",
                                      "puwmod", "gcc"])
    def test_length_near_budget(self, name):
        trace = build_workload(name, 4000)
        assert 3600 <= len(trace) <= 4800

    def test_instruction_mix_sane(self):
        for name in ("perlbmk", "gzip", "vortex"):
            s = build_workload(name, 4000).summary()
            assert s.loads > 0.08 * s.instructions
            assert s.stores > 0
            assert s.branches > 0


class TestValueConsistency:
    """The critical invariant: replaying a trace's stores through a fresh
    MemoryImage must reproduce every load's values — this is what makes
    DLVP's cache probes meaningful."""

    @pytest.mark.parametrize("name", ["perlbmk", "gzip", "nat", "mcf",
                                      "vortex", "aifirf", "avmshell",
                                      "h264ref", "puwmod", "octane"])
    def test_loads_match_replayed_image(self, name):
        trace = build_workload(name, 3000)
        image = MemoryImage()
        for inst in trace:
            if inst.op == OpClass.STORE:
                image.write(inst.mem_addr, inst.mem_size, inst.values[0])
            elif inst.op == OpClass.LOAD:
                for k, value in enumerate(inst.values):
                    got = image.read(inst.mem_addr + k * inst.mem_size,
                                     inst.mem_size)
                    assert got == value, (
                        f"{name}: load at {inst.pc:#x} addr "
                        f"{inst.mem_addr:#x} slot {k}"
                    )


class TestCharacteristics:
    def test_vector_workload_has_vector_loads(self):
        s = build_workload("h264ref", 4000).summary()
        assert s.vector_loads > 0
        assert s.multi_dest_loads > 0

    def test_ldp_workload_has_pairs(self):
        s = build_workload("milc", 4000).summary()
        assert s.multi_dest_loads > 0

    def test_interpreter_has_indirect_branches(self):
        trace = build_workload("avmshell", 4000)
        assert any(i.op == OpClass.INDIRECT for i in trace)

    def test_call_workload_has_calls_and_returns(self):
        trace = build_workload("gcc", 4000)
        ops = {i.op for i in trace}
        assert OpClass.CALL in ops and OpClass.RETURN in ops

    def test_cold_code_present(self):
        from repro.workloads.base import _COLD_CODE_BASE
        trace = build_workload("gzip", 6000)
        cold = sum(1 for i in trace if i.pc >= _COLD_CODE_BASE)
        assert 0.02 * len(trace) < cold < 0.25 * len(trace)

    def test_producer_consumer_has_inflight_conflicts(self):
        from repro.trace import load_store_conflicts
        trace = build_workload("puwmod", 4000)
        profile = load_store_conflicts(trace)
        assert profile.fraction_inflight > 0.05

    def test_committed_conflicts_exist(self):
        from repro.trace import load_store_conflicts
        trace = build_workload("perlbmk", 8000)     # flag-ring rewrites
        # Window 64 = the typical in-flight span (commit lag x IPC),
        # matching the Figure 1 experiment's default.
        profile = load_store_conflicts(trace, window=64)
        assert profile.conflict_committed > 0
        assert profile.committed_share > 0.5


class TestMixedPhases:
    def test_unknown_phase_rejected(self):
        from repro.workloads.base import WorkloadBuilder
        from repro.workloads.kernels import mixed_phases
        with pytest.raises(ValueError, match="unknown phases"):
            mixed_phases(WorkloadBuilder("x"), 100, weights={"bogus": 1.0})

    def test_malformed_phase_param_rejected(self):
        from repro.workloads.base import WorkloadBuilder
        from repro.workloads.kernels import mixed_phases
        with pytest.raises(ValueError, match="malformed"):
            mixed_phases(WorkloadBuilder("x"), 100,
                         weights={"hash": 1.0}, bogus_=1)
