"""Figure 10 — flush vs oracle-replay recovery."""

from conftest import emit

from repro.experiments import fig10_recovery


def test_fig10_replay(benchmark, subset_runner):
    result = benchmark.pedantic(
        fig10_recovery.run, args=(subset_runner,), rounds=1, iterations=1
    )
    emit(result)
    # Shapes: replay never hurts, and the high-accuracy predictors
    # (DLVP, VTAGE) gain only a little from it (paper: +0.8/+0.7 points)
    # because they rarely flush in the first place.
    for scheme in ("cap", "vtage", "dlvp"):
        assert result.delta(scheme) >= -0.002
    assert result.delta("dlvp") < 0.05
    assert result.delta("vtage") < 0.05
