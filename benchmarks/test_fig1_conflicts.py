"""Figure 1 — load-store conflict breakdown (committed vs in-flight)."""

from conftest import emit

from repro.experiments import fig1_conflicts


def test_fig1_conflicts(benchmark, suite_runner):
    result = benchmark.pedantic(
        fig1_conflicts.run, args=(suite_runner,), rounds=1, iterations=1
    )
    emit(result)
    # Shape: conflicts exist, and committed stores dominate them
    # (paper: ~67% of conflicts are with committed stores).
    assert result.average_conflict_fraction > 0.02
    assert result.average_committed_share > 0.5
