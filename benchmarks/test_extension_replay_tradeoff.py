"""Extension — the paper's stated future work (Section 5.2.4): under a
replay-based recovery, trade prediction accuracy for coverage and look
for the sweet spot.

We sweep DLVP's APT confidence (the FPC vector) under both recovery
models.  With flush recovery, loosening confidence is dangerous (every
extra misprediction flushes); with oracle replay, mispredictions cost
nothing, so looser confidence monotonically buys coverage — exactly the
trade the paper anticipates.
"""

from conftest import subset_runner  # noqa: F401

from repro.core import DlvpConfig
from repro.experiments.runner import arithmetic_mean, format_table
from repro.pipeline import DlvpScheme, RecoveryMode
from repro.predictors import PapConfig

CONFIDENCE_VECTORS = {
    2: (1.0, 1.0),
    4: (1.0, 0.5, 0.5),
    8: (1.0, 0.5, 0.25),       # the paper's design point
    16: (1.0, 0.5, 0.25, 0.125),
}


def test_extension_replay_tradeoff(benchmark, subset_runner):
    def sweep():
        out = {}
        for threshold, vector in CONFIDENCE_VECTORS.items():
            cfg = DlvpConfig(pap=PapConfig(fpc_vector=vector))
            row = {}
            for recovery in (RecoveryMode.FLUSH, RecoveryMode.ORACLE_REPLAY):
                runs = subset_runner.run_scheme(
                    lambda cfg=cfg: DlvpScheme(cfg), recovery=recovery
                )
                row[recovery.value] = {
                    "speedup": arithmetic_mean(
                        subset_runner.speedups(runs).values()
                    ),
                    "coverage": arithmetic_mean(
                        r.value_coverage for r in runs.values()
                    ),
                }
            out[threshold] = row
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("Extension — accuracy-for-coverage trade under replay recovery")
    rows = []
    for threshold, row in result.items():
        rows.append([
            f"~{threshold}",
            f"{row['flush']['speedup']:+7.2%}",
            f"{row['oracle_replay']['speedup']:+7.2%}",
            f"{row['oracle_replay']['coverage']:6.1%}",
        ])
    print(format_table(
        ["confidence", "flush speedup", "replay speedup", "coverage"], rows
    ))

    # Looser confidence buys coverage...
    assert result[2]["oracle_replay"]["coverage"] >= \
        result[16]["oracle_replay"]["coverage"] - 0.01
    # ...and replay makes loose confidence safe: at the loosest point,
    # replay must do at least as well as flush.
    assert result[2]["oracle_replay"]["speedup"] >= \
        result[2]["flush"]["speedup"] - 0.002
    # The sweet spot under replay is at or looser than the paper's
    # flush-mode design point.
    best_replay = max(result, key=lambda t: result[t]["oracle_replay"]["speedup"])
    assert best_replay <= 8
