"""Ablation — PAP confidence threshold sweep.

The paper's design-space exploration (Section 5.1) picked an expected
threshold of ~8 observations (a 2-bit FPC with vector {1, 1/2, 1/4}).
Sweeping the FPC vector trades coverage against accuracy.
"""

from conftest import subset_runner  # noqa: F401

from repro.experiments.fig4_address_prediction import evaluate_pap
from repro.experiments.runner import format_table
from repro.predictors import PapConfig
from repro.predictors.base import PredictorStats

VECTORS = {
    2: (1.0, 1.0),
    4: (1.0, 0.5, 0.5),
    8: (1.0, 0.5, 0.25),
    16: (1.0, 0.5, 0.25, 0.125),
    32: (1.0, 0.5, 0.25, 0.125, 0.0625),
}


def test_ablation_pap_confidence(benchmark, subset_runner):
    def sweep():
        out = {}
        for threshold, vector in VECTORS.items():
            total = PredictorStats()
            for trace in subset_runner.traces.values():
                total = total.merge(
                    evaluate_pap(trace, PapConfig(fpc_vector=vector))
                )
            out[threshold] = total
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("Ablation — PAP confidence threshold (expected observations)")
    rows = [
        [f"~{t}", f"{s.coverage:6.1%}", f"{s.accuracy:7.2%}"]
        for t, s in result.items()
    ]
    print(format_table(["threshold", "coverage", "accuracy"], rows))

    # Coverage falls and accuracy rises as the threshold climbs.
    assert result[2].coverage >= result[32].coverage
    assert result[32].accuracy >= result[2].accuracy - 0.001
    # The paper's chosen point already clears 99% accuracy.
    assert result[8].accuracy > 0.99
