"""Figure 6b — coverage of CAP, VTAGE and DLVP.

Paper: DLVP 31.1%, VTAGE 29.6%, CAP 23.8% (DLVP's in-pipeline coverage
is below standalone PAP's 37% because the LSCD filters conflict-prone
loads).
"""

from conftest import emit

from repro.experiments.fig4_address_prediction import evaluate_pap
from repro.predictors.base import PredictorStats


def test_fig6b_coverage(benchmark, fig6_result, suite_runner):
    result = fig6_result

    def standalone_pap_coverage():
        total = PredictorStats()
        for trace in suite_runner.traces.values():
            total = total.merge(evaluate_pap(trace))
        return total.coverage

    pap_cov = benchmark.pedantic(standalone_pap_coverage, rounds=1, iterations=1)
    emit(result)
    dlvp_cov = result.average_coverage("dlvp")
    print(f"standalone PAP coverage: {pap_cov:.1%} vs in-pipeline DLVP "
          f"{dlvp_cov:.1%} (LSCD + PVT filtering; paper: 37% -> 31.1%)")

    # Shapes that reproduce: DLVP covers more loads than VTAGE, LSCD
    # filtering keeps DLVP's in-pipeline coverage at or below standalone
    # PAP's, and both headline predictors stay above 99% accuracy.
    # (Known small-scale deviation, see EXPERIMENTS.md: CAP-based DLVP
    # can out-cover PAP-based DLVP at short trace lengths because CAP's
    # per-load confidence trains once per static load while PAP trains
    # per (PC, path) context.)
    assert dlvp_cov > result.average_coverage("vtage")
    assert dlvp_cov <= pap_cov + 0.02
    assert result.average_accuracy("dlvp") > 0.99
    assert result.average_accuracy("vtage") > 0.99
