"""Figure 7 — VTAGE flavours (vanilla / dynamic / static filter, loads
vs all instructions)."""

from conftest import emit

from repro.experiments import fig7_vtage_flavors


def test_fig7_vtage_flavors(benchmark, subset_runner):
    result = benchmark.pedantic(
        fig7_vtage_flavors.run, args=(subset_runner,), rounds=1, iterations=1
    )
    emit(result)
    static_loads = result.average_speedup("static/loads")
    vanilla_loads = result.average_speedup("vanilla/loads")
    static_all = result.average_speedup("static/all")

    # Shapes: the static filter never loses to vanilla (it removes the
    # multi-destination poison), and loads-only never loses to
    # predicting everything at this modest 8KB budget.
    assert static_loads >= vanilla_loads - 0.002
    assert static_loads >= static_all - 0.002
    # Filters must not reduce accuracy.
    assert result.average_accuracy("static/loads") >= \
        result.average_accuracy("vanilla/loads") - 0.001
