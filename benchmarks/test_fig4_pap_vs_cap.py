"""Figure 4 — standalone address prediction: PAP vs CAP."""

from conftest import emit

from repro.experiments import fig4_address_prediction


def test_fig4_pap_vs_cap(benchmark, suite_runner):
    result = benchmark.pedantic(
        fig4_address_prediction.run,
        args=(suite_runner,),
        kwargs={"cap_confidences": (3, 8, 16, 24, 32, 64)},
        rounds=1,
        iterations=1,
    )
    emit(result)
    # Shapes that reproduce: PAP's accuracy is very high (>99%) at its
    # low confidence-8 threshold, and CAP trades coverage away as its
    # confidence requirement rises.
    assert result.pap.accuracy > 0.99
    assert result.pap.coverage > 0.15
    caps = result.cap_by_confidence
    assert caps[64].coverage < caps[3].coverage
    # Known small-scale deviation (documented in EXPERIMENTS.md): CAP's
    # absolute coverage can exceed PAP's at short trace lengths, because
    # PAP's per-(PC, path) contexts each need ~8 training visits while
    # CAP's per-load confidence trains once per static load.
