"""Figure 6c — total core energy normalized to the baseline.

Paper: DLVP's speedup more than offsets its extra cache activity; its
average core energy is on par with the baseline and with VTAGE.
"""

from conftest import emit


def test_fig6c_energy(benchmark, fig6_result):
    result = fig6_result
    averages = benchmark.pedantic(
        lambda: {s: result.average_energy(s) for s in ("cap", "vtage", "dlvp")},
        rounds=1, iterations=1,
    )
    emit(result)
    print(f"normalized core energy: {averages}")
    # Shape: every scheme stays within a few percent of baseline energy,
    # and DLVP does not cost more than ~5% despite probing twice.
    for scheme, value in averages.items():
        assert 0.85 < value < 1.10, scheme
