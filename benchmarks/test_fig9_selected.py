"""Figure 9 — selected benchmarks where speedup does not track coverage."""

from conftest import BENCH_INSTRUCTIONS, emit

from repro.experiments import SuiteRunner, fig9_selected


def test_fig9_selected(benchmark):
    runner = SuiteRunner(n_instructions=BENCH_INSTRUCTIONS)
    result = benchmark.pedantic(
        fig9_selected.run, args=(runner,), rounds=1, iterations=1
    )
    emit(result)
    # Shape: speedup rank does not simply follow coverage rank across
    # the selected set (the paper's point) — verify at least one pair
    # is discordant for DLVP.
    names = list(fig9_selected.SELECTED)
    discordant = False
    for a in names:
        for b in names:
            cov_gap = (result.dlvp[a].value_coverage
                       - result.dlvp[b].value_coverage)
            spd_gap = result.dlvp_speedups[a] - result.dlvp_speedups[b]
            if cov_gap > 0.02 and spd_gap < -0.001:
                discordant = True
    assert discordant
