"""Ablation — PAQ drop horizon N (Section 3.2.2).

The paper derives N = 4 from a Cortex-A72-like front-end and reports
<0.1% of entries dropped; an over-tight horizon discards probes that
would have delivered values in time.
"""

from conftest import subset_runner  # noqa: F401

from repro.core import DlvpConfig
from repro.core.dlvp import DlvpStats
from repro.experiments.runner import arithmetic_mean, format_table
from repro.pipeline import DlvpScheme

HORIZONS = (1, 2, 4, 8)


def test_ablation_paq(benchmark, subset_runner):
    def sweep():
        out = {}
        for n in HORIZONS:
            cfg = DlvpConfig(paq_drop_cycles=n)
            runs = subset_runner.run_scheme(lambda cfg=cfg: DlvpScheme(cfg))
            coverages = []
            for r in runs.values():
                assert isinstance(r.scheme_stats, DlvpStats)
                coverages.append(r.scheme_stats.coverage)
            out[n] = {
                "speedup": arithmetic_mean(subset_runner.speedups(runs).values()),
                "coverage": arithmetic_mean(coverages),
            }
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("Ablation — PAQ drop horizon")
    rows = [
        [f"N={n}", f"{v['speedup']:+7.2%}", f"{v['coverage']:6.1%}"]
        for n, v in result.items()
    ]
    print(format_table(["horizon", "avg speedup", "coverage"], rows))

    # N=1 kills every probe (transport alone takes 2 cycles); the
    # paper's N=4 loses essentially nothing vs N=8.
    assert result[1]["coverage"] < 0.01
    assert result[4]["coverage"] > result[2]["coverage"] - 0.02
    assert abs(result[8]["coverage"] - result[4]["coverage"]) < 0.02
