"""Ablation — LSCD on/off (Section 3.2.2).

Without the 4-entry Load-Store Conflict Detector, loads racing in-flight
stores keep getting value-predicted from stale cache contents and flush
the pipe; the in-flight-conflict-heavy workloads quantify the damage.
"""

from conftest import BENCH_INSTRUCTIONS

from repro.core import DlvpConfig
from repro.experiments import SuiteRunner
from repro.experiments.runner import arithmetic_mean, format_table
from repro.pipeline import DlvpScheme

CONFLICT_HEAVY = ["puwmod", "fbital", "queueing", "avmshell", "gcc",
                  "perlbench", "sunspider"]


def test_ablation_lscd(benchmark):
    runner = SuiteRunner(n_instructions=BENCH_INSTRUCTIONS, names=CONFLICT_HEAVY)

    def sweep():
        out = {}
        for entries in (0, 4):
            cfg = DlvpConfig(lscd_entries=entries)
            runs = runner.run_scheme(lambda cfg=cfg: DlvpScheme(cfg))
            out[entries] = {
                "speedup": arithmetic_mean(runner.speedups(runs).values()),
                "flushes": sum(r.flushes.value for r in runs.values()),
                "accuracy": arithmetic_mean(r.value_accuracy for r in runs.values()),
            }
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("Ablation — LSCD (conflict-heavy workloads)")
    rows = [
        [("off" if e == 0 else f"{e} entries"), f"{v['speedup']:+7.2%}",
         str(v["flushes"]), f"{v['accuracy']:7.2%}"]
        for e, v in result.items()
    ]
    print(format_table(["lscd", "avg speedup", "value flushes", "accuracy"], rows))

    # The filter's whole purpose: far fewer value flushes, better or
    # equal accuracy and performance.
    assert result[4]["flushes"] < result[0]["flushes"]
    assert result[4]["accuracy"] >= result[0]["accuracy"]
    assert result[4]["speedup"] >= result[0]["speedup"] - 0.002
