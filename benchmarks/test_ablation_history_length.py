"""Ablation — load-path history length sweep (Table 4 uses 16 bits).

Short histories under-distinguish contexts (aliasing between paths);
long histories split contexts so finely that each trains too slowly —
the classic history-length trade-off.
"""

from conftest import subset_runner  # noqa: F401

from repro.experiments.fig4_address_prediction import evaluate_pap
from repro.experiments.runner import format_table
from repro.predictors import PapConfig
from repro.predictors.base import PredictorStats

LENGTHS = (2, 4, 8, 16, 32)


def test_ablation_history_length(benchmark, subset_runner):
    def sweep():
        out = {}
        for bits in LENGTHS:
            total = PredictorStats()
            for trace in subset_runner.traces.values():
                total = total.merge(
                    evaluate_pap(trace, PapConfig(history_bits=bits))
                )
            out[bits] = total
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("Ablation — load-path history length")
    rows = [
        [str(b), f"{s.coverage:6.1%}", f"{s.accuracy:7.2%}"]
        for b, s in result.items()
    ]
    print(format_table(["history bits", "coverage", "accuracy"], rows))

    # Every point keeps PAP's hallmark high accuracy.
    for bits, stats in result.items():
        assert stats.accuracy > 0.97, bits
    # Very long histories must not beat the paper's 16-bit choice by a
    # wide margin at these trace lengths (context-splitting cost).
    assert result[32].coverage <= result[16].coverage + 0.05
