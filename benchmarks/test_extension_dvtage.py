"""Extension — D-VTAGE on the DLVP paper's workloads.

Section 2.1 discusses D-VTAGE's trade-offs without evaluating it; here
it runs head-to-head with VTAGE and DLVP on the same suite subset.
D-VTAGE captures strided value sequences plain VTAGE cannot, at the
cost of an adder on the prediction path and a speculative last-value
window (we model the idealised variant, so these numbers are an upper
bound for D-VTAGE).
"""

from conftest import subset_runner  # noqa: F401  (pytest fixture)

from repro.experiments.runner import arithmetic_mean, format_table
from repro.pipeline import DlvpScheme, DvtageScheme, VtageScheme

SCHEMES = {
    "vtage": VtageScheme,
    "dvtage": DvtageScheme,
    "dlvp": DlvpScheme,
}


def test_extension_dvtage(benchmark, subset_runner):
    def sweep():
        out = {}
        for name, factory in SCHEMES.items():
            runs = subset_runner.run_scheme(factory)
            out[name] = {
                "speedup": arithmetic_mean(subset_runner.speedups(runs).values()),
                "coverage": arithmetic_mean(r.value_coverage for r in runs.values()),
                "accuracy": arithmetic_mean(r.value_accuracy for r in runs.values()),
            }
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("Extension — D-VTAGE vs VTAGE vs DLVP")
    rows = [
        [name, f"{v['speedup']:+7.2%}", f"{v['coverage']:6.1%}",
         f"{v['accuracy']:7.2%}"]
        for name, v in result.items()
    ]
    print(format_table(["scheme", "avg speedup", "coverage", "accuracy"], rows))

    # D-VTAGE strictly generalizes VTAGE's value model (stride 0 =
    # last-value), so idealised D-VTAGE should at least match VTAGE's
    # coverage; DLVP still leads overall on these workloads.
    assert result["dvtage"]["coverage"] >= result["vtage"]["coverage"] - 0.03
    assert result["dlvp"]["speedup"] >= result["dvtage"]["speedup"] - 0.01
    assert result["dvtage"]["accuracy"] > 0.99
