"""Figure 6d — predictor area/read/write energy normalized to PAP."""

from repro.energy import predictor_cost_table
from repro.experiments.runner import format_table


def test_fig6d_predictor_costs(benchmark):
    table = benchmark.pedantic(predictor_cost_table, rounds=1, iterations=1)
    rows = [
        [c.name, str(c.storage_bits), f"{c.area:5.2f}", f"{c.read_energy:5.2f}",
         f"{c.write_energy:5.2f}"]
        for c in table.values()
    ]
    print()
    print("Figure 6d — predictor costs normalized to PAP")
    print(format_table(["predictor", "bits", "area", "read", "write"], rows))

    assert table["pap"].area == 1.0
    # CAP stores more bits across two tables: bigger and hungrier.
    assert table["cap"].area > 1.2
    assert table["cap"].read_energy > 1.3
    # VTAGE reads three tables per lookup.
    assert table["vtage"].read_energy > 1.3
    # Budgets (Table 4): PAP 67k+way, CAP ~95k, VTAGE ~62.3k bits.
    assert table["cap"].storage_bits > table["pap"].storage_bits > \
        table["vtage"].storage_bits
