"""Figure 8 — combining DLVP and VTAGE as a tournament."""

from conftest import emit

from repro.experiments import fig8_tournament


def test_fig8_tournament(benchmark, suite_runner):
    result = benchmark.pedantic(
        fig8_tournament.run, args=(suite_runner,), rounds=1, iterations=1
    )
    emit(result)
    d_share, v_share = result.prediction_breakdown()

    # Shapes: combining beats either alone (or at worst matches DLVP),
    # the coverage gain over DLVP alone is modest (heavy overlap), and
    # DLVP supplies more of the final predictions than VTAGE
    # (paper: 18.2% vs 16.1%).
    assert result.average_speedup("tournament") >= \
        result.average_speedup("dlvp") - 0.005
    assert result.average_coverage("tournament") <= \
        result.average_coverage("dlvp") + result.average_coverage("vtage")
    assert d_share > v_share
