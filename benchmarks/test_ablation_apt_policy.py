"""Ablation — APT allocation Policy-1 (always replace) vs Policy-2
(replace only unconfident entries; the paper's choice, Section 3.1.2)."""

from conftest import subset_runner  # noqa: F401  (fixture re-export)

from repro.core import DlvpConfig
from repro.experiments.runner import arithmetic_mean, format_table
from repro.pipeline import DlvpScheme
from repro.predictors import PapConfig


def test_ablation_apt_policy(benchmark, subset_runner):
    def sweep():
        out = {}
        for policy in (1, 2):
            cfg = DlvpConfig(pap=PapConfig(allocation_policy=policy))
            runs = subset_runner.run_scheme(lambda cfg=cfg: DlvpScheme(cfg))
            out[policy] = {
                "speedup": arithmetic_mean(subset_runner.speedups(runs).values()),
                "coverage": arithmetic_mean(
                    r.value_coverage for r in runs.values()
                ),
            }
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("Ablation — APT allocation policy")
    rows = [
        [f"Policy-{p}", f"{v['speedup']:+7.2%}", f"{v['coverage']:6.1%}"]
        for p, v in result.items()
    ]
    print(format_table(["policy", "avg speedup", "coverage"], rows))

    # The paper found Policy-2 superior; at minimum it must not lose
    # coverage (confident entries survive interference).
    assert result[2]["coverage"] >= result[1]["coverage"] - 0.01
