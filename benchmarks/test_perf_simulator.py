"""Throughput microbenchmarks of the simulator itself.

Unlike the figure benches (one-shot row generators), these use real
pytest-benchmark statistics (multiple rounds) and act as performance
regression guards for the hot paths: trace generation, the baseline
timing model, and a DLVP-equipped run.
"""

import pytest

from repro.pipeline import DlvpScheme, simulate
from repro.workloads import build_workload

N = 4000


@pytest.fixture(scope="module")
def trace():
    return build_workload("vortex", N)


def test_perf_trace_generation(benchmark):
    trace = benchmark(build_workload, "vortex", N)
    assert len(trace) >= N * 0.9


def test_perf_baseline_simulation(benchmark, trace):
    result = benchmark(simulate, trace)
    assert result.cycles > 0


def test_perf_dlvp_simulation(benchmark, trace):
    result = benchmark(lambda: simulate(trace, scheme=DlvpScheme()))
    assert result.value_predictions > 0


def test_perf_standalone_pap(benchmark, trace):
    from repro.experiments.fig4_address_prediction import evaluate_pap
    stats = benchmark(evaluate_pap, trace)
    assert stats.loads_seen > 0


def test_perf_conflict_profiler(benchmark, trace):
    from repro.trace import load_store_conflicts
    profile = benchmark(load_store_conflicts, trace)
    assert profile.total_loads > 0
