"""Figure 6a — per-workload speedup of CAP, VTAGE and DLVP.

Paper: DLVP +4.8% average / up to +71% (perlbmk); VTAGE +2.1%;
CAP +2.3%.
"""

from conftest import emit

from repro.experiments.runner import format_table


def test_fig6a_speedup(benchmark, fig6_result):
    result = fig6_result

    def per_workload_rows():
        names = sorted(result.speedups["dlvp"])
        return [
            [name] + [f"{result.speedups[s][name]:+7.2%}"
                      for s in ("cap", "vtage", "dlvp")]
            for name in names
        ]

    rows = benchmark.pedantic(per_workload_rows, rounds=1, iterations=1)
    print()
    print("Figure 6a — per-workload speedups")
    print(format_table(["workload", "cap", "vtage", "dlvp"], rows))
    emit(result)

    # Shape: DLVP wins on average and owns the outlier (perlbmk).
    assert result.average_speedup("dlvp") > result.average_speedup("vtage")
    assert result.average_speedup("dlvp") > result.average_speedup("cap")
    assert result.average_speedup("dlvp") > 0.015
    best_name, best = result.max_speedup("dlvp")
    assert best_name == "perlbmk"
    assert best > 0.30
