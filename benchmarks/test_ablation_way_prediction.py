"""Ablation — way prediction on the speculative probe (Section 3.2.2,
"Power Optimization").

With way prediction the probe reads one cache way instead of the whole
set; a way misprediction (block evicted and refilled elsewhere) shows
up as a probe miss.  Paper: way mispredictions "almost never happen".
"""

from conftest import subset_runner  # noqa: F401

from repro.core import DlvpConfig
from repro.core.dlvp import DlvpStats
from repro.experiments.runner import arithmetic_mean, format_table
from repro.pipeline import DlvpScheme


def test_ablation_way_prediction(benchmark, subset_runner):
    def sweep():
        out = {}
        for enabled in (True, False):
            cfg = DlvpConfig(way_prediction=enabled)
            runs = subset_runner.run_scheme(lambda cfg=cfg: DlvpScheme(cfg))
            way_misses = probes = 0
            for r in runs.values():
                assert isinstance(r.scheme_stats, DlvpStats)
                way_misses += r.scheme_stats.way_mispredictions
                probes += r.scheme_stats.probes
            out[enabled] = {
                "speedup": arithmetic_mean(subset_runner.speedups(runs).values()),
                "way_misses": way_misses,
                "probes": probes,
            }
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("Ablation — probe way prediction")
    rows = [
        [("on" if e else "off"), f"{v['speedup']:+7.2%}", str(v["way_misses"]),
         str(v["probes"])]
        for e, v in result.items()
    ]
    print(format_table(["way prediction", "avg speedup", "way misses", "probes"], rows))

    with_wp = result[True]
    # Way mispredictions are a vanishing fraction of probes (paper:
    # "almost never"), so enabling the optimization is performance-free.
    if with_wp["probes"]:
        assert with_wp["way_misses"] / with_wp["probes"] < 0.01
    assert abs(result[True]["speedup"] - result[False]["speedup"]) < 0.01
