"""Figure 5 — benefit of DLVP-generated prefetches."""

from conftest import emit

from repro.experiments import fig5_prefetch


def test_fig5_prefetch(benchmark, subset_runner):
    result = benchmark.pedantic(
        fig5_prefetch.run, args=(subset_runner,), rounds=1, iterations=1
    )
    emit(result)
    # Shape: the prefetch fraction is small (paper: ~0.3% average) and
    # enabling prefetch is roughly speedup-neutral-to-positive.
    assert result.average_prefetch_fraction < 0.08
    assert result.average_delta > -0.01
