"""Figure 2 — address/value repeatability breakdown."""

from conftest import emit

from repro.experiments import fig2_repeatability


def test_fig2_repeatability(benchmark, suite_runner):
    result = benchmark.pedantic(
        fig2_repeatability.run, args=(suite_runner,), rounds=1, iterations=1
    )
    emit(result)
    # Shape: most loads have addresses repeating >= 8 times, and the
    # address >=8 mass exceeds the value >=64 mass — the asymmetry that
    # justifies PAP's low confidence threshold (paper: 91% vs 80%).
    assert result.address_ge8 > 0.5
    assert result.address_ge8 > result.value_ge64
    # Cumulative series must be monotone non-increasing.
    for kind in ("address", "value"):
        series = list(result.series(kind).values())
        assert all(a >= b for a, b in zip(series, series[1:]))
