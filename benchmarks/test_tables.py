"""Tables 1-4 — configuration and structure tables."""

from conftest import emit

from repro.experiments import tables


def test_table1_apt_layout(benchmark):
    result = benchmark.pedantic(tables.table1, rounds=1, iterations=1)
    emit(result)
    assert result.armv7_bits == 50 and result.armv8_bits == 67


def test_table2_pvt_designs(benchmark):
    result = benchmark.pedantic(tables.table2, rounds=1, iterations=1)
    emit(result)
    d = result.designs
    assert d["pvt"].area < 0.2
    assert d["design1"].area < d["design3"].area < d["design2"].area
    assert d["design3"].read_energy < 1.0
    assert 1.0 < d["design3"].write_energy < d["design2"].write_energy


def test_table3_suite(benchmark):
    result = benchmark.pedantic(tables.table3, rounds=1, iterations=1)
    emit(result)
    assert result.total == 78


def test_table4_budgets(benchmark):
    result = benchmark.pedantic(tables.table4, rounds=1, iterations=1)
    emit(result)
    assert result.pap_bits == 1024 * 67          # paper: 67k bits (ARMv8)
    assert result.pap_bits_v7 == 1024 * 50       # paper: 50k bits (ARMv7)
    assert 90_000 < result.cap_bits < 100_000    # paper: 95k bits
    assert 60_000 < result.vtage_bits < 65_000   # paper: 62.3k bits
