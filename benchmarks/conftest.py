"""Shared fixtures for the benchmark harness.

Each ``test_fig*`` / ``test_table*`` benchmark regenerates one of the
paper's tables or figures and prints the rows it reports.  The suite
runner (traces + baseline simulations) is built once per session; the
heavyweight figure experiments that several benches share are also
session-cached.

At session end the harness refreshes the committed throughput report
(``repro.bench.BENCH_REPORT_NAME``, currently ``BENCH_pr8.json``) at
the repo root with the simulator's own throughput (inst/s per scheme
and trace engine, wall time, peak RSS — see :mod:`repro.bench`), so
every benchmark run also updates the machine-tracked perf trajectory.

Knobs:
    REPRO_BENCH_INSTRUCTIONS   trace length per workload (default 8000)
    REPRO_BENCH_WORKLOADS      optional comma-separated subset
    REPRO_BENCH_THROUGHPUT     0 to skip the session-end throughput
                               report (default on)
"""

import os

import pytest

from repro.experiments import SuiteRunner

BENCH_INSTRUCTIONS = int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "16000"))
_WORKLOADS = os.environ.get("REPRO_BENCH_WORKLOADS")

# A representative cross-section used by the pricier sweeps (Figures
# 5/7/10 and the ablations) so the full harness stays manageable.
REPRESENTATIVE = [
    "perlbmk", "perlbench", "nat", "gzip", "bzip2", "vortex", "gcc",
    "aifirf", "tblook", "mcf", "h264ref", "milc", "sunspider", "avmshell",
    "octane", "linpack", "puwmod", "xalancbmk", "pdfjs", "soplex",
]


def _names():
    if _WORKLOADS:
        return [n.strip() for n in _WORKLOADS.split(",") if n.strip()]
    return None


@pytest.fixture(scope="session")
def suite_runner():
    """Full-suite runner (all 78 workloads unless overridden)."""
    return SuiteRunner(n_instructions=BENCH_INSTRUCTIONS, names=_names())


@pytest.fixture(scope="session")
def subset_runner():
    """Representative-subset runner for multi-configuration sweeps."""
    names = _names() or REPRESENTATIVE
    return SuiteRunner(n_instructions=BENCH_INSTRUCTIONS, names=names)


@pytest.fixture(scope="session")
def fig6_result(suite_runner):
    from repro.experiments import fig6_value_prediction
    return fig6_value_prediction.run(suite_runner)


_REPORT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                            "bench_report.txt")
_report_initialized = False


def emit(result) -> None:
    """Print an experiment's rows beneath the benchmark output and
    append them to ``bench_report.txt`` (so the rendered tables survive
    pytest's output capturing even without ``-s``)."""
    global _report_initialized
    text = result.render()
    print()
    print(text)
    mode = "a" if _report_initialized else "w"
    with open(_REPORT_PATH, mode) as fh:
        fh.write(text)
        fh.write("\n\n")
    _report_initialized = True


def pytest_sessionfinish(session, exitstatus):
    """Refresh the committed bench report after a green benchmark session.

    Skipped on failure (a broken session's timings are meaningless),
    on collect-only runs, or when ``REPRO_BENCH_THROUGHPUT=0``.
    """
    if exitstatus != 0 or session.config.option.collectonly:
        return
    if os.environ.get("REPRO_BENCH_THROUGHPUT", "1") == "0":
        return
    from repro import bench

    report_path = os.path.join(os.path.dirname(__file__), os.pardir,
                               bench.BENCH_REPORT_NAME)
    report = bench.run_throughput()
    path = bench.write_report(report, report_path)
    tr = session.config.pluginmanager.get_plugin("terminalreporter")
    if tr is not None:
        rates = ", ".join(
            f"{sid} {entry['inst_per_s']:,}/s"
            for sid, entry in report["schemes"].items()
        )
        tr.write_line(f"throughput report -> {path}: {rates}")
